//! The plain-text configuration exchange format (paper Fig. 3).
//!
//! The printer emits the program structure with one line per module,
//! function, basic block, and candidate instruction, indentation for
//! readability, and an optional flag letter (`s`/`d`/`i`) in the first
//! column. The parser accepts the same format and resolves entries back to
//! program ids: instructions by code address, blocks by number, functions
//! and modules by name.
//!
//! ```text
//! MODULE01: ep
//!   FUNC01: main()
//!     BBLK01
//!       s INSN01: 0x6f45ce "addsd %xmm1, %xmm0"
//!       d INSN02: 0x6f45d7 "mulsd %xmm2, %xmm1"
//!   s FUNC02: split()
//!     BBLK02
//!       d INSN03: 0x6f824c "divsd %xmm2, %xmm1"
//! ```

use crate::config::{Config, Flag};
use crate::tree::{NodeRef, StructureTree};
use std::fmt::Write as _;

/// Render a configuration against its structure tree in the exchange
/// format.
pub fn print_config(tree: &StructureTree, cfg: &Config) -> String {
    let mut out = String::new();
    let mut insn_no = 1usize;
    for (mi, m) in tree.modules.iter().enumerate() {
        let mflag = cfg.node_flag(tree, NodeRef::Module(mi));
        let _ = writeln!(out, "{}MODULE{:02}: {}", flag_prefix(mflag), mi + 1, m.name);
        for (fi, fun) in m.funcs.iter().enumerate() {
            let fflag = cfg.node_flag(tree, NodeRef::Func(mi, fi));
            let _ = writeln!(out, "  {}FUNC{:02}: {}()", flag_prefix(fflag), fi + 1, fun.name);
            for (bi, blk) in fun.blocks.iter().enumerate() {
                let bflag = cfg.node_flag(tree, NodeRef::Block(mi, fi, bi));
                let _ = writeln!(out, "    {}BBLK{:02}", flag_prefix(bflag), blk.id.0);
                for (ii, e) in blk.insns.iter().enumerate() {
                    let iflag = cfg.node_flag(tree, NodeRef::Insn(mi, fi, bi, ii));
                    let _ = writeln!(
                        out,
                        "      {}INSN{:02}: {:#x} \"{}\"",
                        flag_prefix(iflag),
                        insn_no,
                        e.addr,
                        e.disasm
                    );
                    insn_no += 1;
                }
            }
        }
    }
    out
}

fn flag_prefix(f: Option<Flag>) -> String {
    match f {
        Some(fl) => format!("{} ", fl.token()),
        None => String::new(),
    }
}

/// A parse failure, with the offending line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Explanation.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a configuration in the exchange format against a structure tree.
pub fn parse_config(tree: &StructureTree, text: &str) -> Result<Config, ParseError> {
    let mut cfg = Config::new();
    // Cursors tracking the current module/function position by name.
    let mut cur_module: Option<usize> = None;
    let mut cur_func: Option<(usize, usize)> = None;

    for (ln, raw) in text.lines().enumerate() {
        let line = ln + 1;
        let t = raw.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        // Optional flag token followed by whitespace. Structural
        // keywords are uppercase and flag tokens lowercase, so a line
        // either starts with a keyword (no flag) or its first token
        // *must* parse as a flag — anything else is an error, never a
        // silent no-flag default.
        let is_keyword = ["MODULE", "FUNC", "BBLK", "INSN"].iter().any(|k| t.starts_with(k));
        let (flag, rest) = if is_keyword {
            (None, t)
        } else {
            match t.split_once(char::is_whitespace) {
                Some((tok, rest)) => {
                    let f = Flag::from_token(tok).map_err(|e| err(line, e.to_string()))?;
                    (Some(f), rest.trim_start())
                }
                None => return Err(err(line, format!("unrecognized line `{t}`"))),
            }
        };

        if let Some(body) = rest.strip_prefix("MODULE") {
            let name = after_colon(body, line)?;
            let mi = tree
                .modules
                .iter()
                .position(|m| m.name == name)
                .ok_or_else(|| err(line, format!("unknown module `{name}`")))?;
            cur_module = Some(mi);
            cur_func = None;
            if let Some(f) = flag {
                cfg.set_module(tree.modules[mi].id, f);
            }
        } else if let Some(body) = rest.strip_prefix("FUNC") {
            let name = after_colon(body, line)?;
            let name = name.trim_end_matches("()");
            let mi = cur_module.ok_or_else(|| err(line, "FUNC before any MODULE".into()))?;
            let fi = tree.modules[mi]
                .funcs
                .iter()
                .position(|f| f.name == name)
                .ok_or_else(|| err(line, format!("unknown function `{name}`")))?;
            cur_func = Some((mi, fi));
            if let Some(f) = flag {
                cfg.set_func(tree.modules[mi].funcs[fi].id, f);
            }
        } else if let Some(body) = rest.strip_prefix("BBLK") {
            let num: u32 = body
                .trim()
                .trim_end_matches(':')
                .parse()
                .map_err(|_| err(line, format!("bad block number `{body}`")))?;
            let (mi, fi) = cur_func.ok_or_else(|| err(line, "BBLK before any FUNC".into()))?;
            let node = tree.modules[mi].funcs[fi]
                .blocks
                .iter()
                .find(|b| b.id.0 == num)
                .ok_or_else(|| err(line, format!("block {num} not in current function")))?;
            if let Some(f) = flag {
                cfg.set_block(node.id, f);
            }
        } else if let Some(body) = rest.strip_prefix("INSN") {
            // INSNxx: 0xADDR "disasm" — identity comes from the address.
            let after = after_colon(body, line)?;
            let addr_tok = after.split_whitespace().next().unwrap_or("");
            let addr = parse_addr(addr_tok)
                .ok_or_else(|| err(line, format!("bad instruction address `{addr_tok}`")))?;
            let id = tree
                .insn_by_addr(addr)
                .ok_or_else(|| err(line, format!("no candidate instruction at {addr:#x}")))?;
            if let Some(f) = flag {
                cfg.set_insn(id, f);
            }
        } else {
            return Err(err(line, format!("unrecognized line `{t}`")));
        }
    }
    Ok(cfg)
}

fn after_colon(s: &str, line: usize) -> Result<&str, ParseError> {
    s.split_once(':').map(|(_, rest)| rest.trim()).ok_or_else(|| err(line, "expected `:`".into()))
}

fn parse_addr(tok: &str) -> Option<u64> {
    let t = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X"))?;
    u64::from_str_radix(t, 16).ok()
}

fn err(line: usize, msg: String) -> ParseError {
    ParseError { line, msg }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpvm::isa::*;
    use fpvm::program::Program;

    fn prog() -> Program {
        let mut p = Program::new(1 << 12);
        let m = p.add_module("ep");
        let f1 = p.add_function(m, "main");
        let b1 = p.add_block(f1);
        p.funcs[f1.0 as usize].entry = b1;
        p.entry = f1;
        let f2 = p.add_function(m, "split");
        let b2 = p.add_block(f2);
        p.funcs[f2.0 as usize].entry = b2;
        for b in [b1, b2] {
            for op in [FpAluOp::Add, FpAluOp::Mul, FpAluOp::Div] {
                p.push_insn(
                    b,
                    InstKind::FpArith {
                        op,
                        prec: Prec::Double,
                        packed: false,
                        dst: Xmm(0),
                        src: RM::Reg(Xmm(1)),
                    },
                );
            }
        }
        p.block_mut(b2).term = Terminator::Ret;
        p
    }

    #[test]
    fn roundtrip_preserves_flags() {
        let p = prog();
        let t = crate::tree::StructureTree::build(&p);
        let ids = t.all_insns();
        let mut cfg = Config::new();
        cfg.set_insn(ids[0], Flag::Single);
        cfg.set_insn(ids[1], Flag::Double);
        cfg.set_insn(ids[2], Flag::Ignore);
        cfg.set_func(t.modules[0].funcs[1].id, Flag::Single);
        let text = print_config(&t, &cfg);
        let parsed = parse_config(&t, &text).unwrap();
        assert_eq!(parsed, cfg);
    }

    #[test]
    fn printed_format_matches_paper_shape() {
        let p = prog();
        let t = crate::tree::StructureTree::build(&p);
        let mut cfg = Config::new();
        cfg.set_insn(t.all_insns()[0], Flag::Single);
        let text = print_config(&t, &cfg);
        assert!(text.contains("MODULE01: ep"));
        assert!(text.contains("FUNC01: main()"));
        assert!(text.contains("BBLK"));
        assert!(text.contains("s INSN01:"));
        assert!(text.contains("\"addsd %xmm1, %xmm0\""));
    }

    #[test]
    fn empty_and_comment_lines_ignored() {
        let p = prog();
        let t = crate::tree::StructureTree::build(&p);
        let text = "# comment\n\nMODULE01: ep\n  FUNC01: main()\n";
        let cfg = parse_config(&t, text).unwrap();
        assert!(cfg.is_empty());
    }

    #[test]
    fn unknown_names_error_with_line() {
        let p = prog();
        let t = crate::tree::StructureTree::build(&p);
        let e = parse_config(&t, "MODULE01: nope\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse_config(&t, "MODULE01: ep\n  FUNC01: nope()\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn lattice_flags_round_trip() {
        let p = prog();
        let t = crate::tree::StructureTree::build(&p);
        let ids = t.all_insns();
        let mut cfg = Config::new();
        cfg.set_insn(ids[0], Flag::Half);
        cfg.set_insn(ids[1], Flag::Bf16);
        cfg.set_insn(ids[2], Flag::Custom { mantissa_bits: 5, exp_bits: 4 });
        cfg.set_func(t.modules[0].funcs[1].id, Flag::Half);
        let text = print_config(&t, &cfg);
        assert!(text.contains("h INSN01:"));
        assert!(text.contains("b INSN02:"));
        assert!(text.contains("m5e4 INSN03:"));
        let parsed = parse_config(&t, &text).unwrap();
        assert_eq!(parsed, cfg);
    }

    #[test]
    fn unknown_flag_tokens_are_rejected_not_defaulted() {
        let p = prog();
        let t = crate::tree::StructureTree::build(&p);
        // An unknown single-character flag is an error…
        let e = parse_config(&t, "x MODULE01: ep\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.msg.contains("unknown precision flag `x`"), "{}", e.msg);
        // …and so is a malformed custom token (the specific reason
        // surfaces in the message).
        let e = parse_config(&t, "MODULE01: ep\n  m24e8 FUNC01: main()\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("m24e8"), "{}", e.msg);
        assert!(e.msg.contains("mantissa"), "{}", e.msg);
    }

    #[test]
    fn aggregate_flag_on_function_line() {
        let p = prog();
        let t = crate::tree::StructureTree::build(&p);
        let text = "MODULE01: ep\n  s FUNC02: split()\n";
        let cfg = parse_config(&t, text).unwrap();
        let split_id = t.modules[0].funcs[1].id;
        assert_eq!(cfg.funcs.get(&split_id.0), Some(&Flag::Single));
        // all of split()'s instructions are effectively single
        for e in &t.modules[0].funcs[1].blocks[0].insns {
            assert_eq!(cfg.effective(&t, e.id), Flag::Single);
        }
    }
}
