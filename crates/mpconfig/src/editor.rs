//! A terminal analogue of the paper's graphical configuration editor
//! (Fig. 4): renders the structure tree with per-node flags and effective
//! precision, and exposes toggle operations for interactive adjustment.

use crate::config::{Config, Flag};
use crate::tree::{NodeRef, StructureTree};
use std::fmt::Write as _;

/// Render the structure tree with flags. Explicit flags appear in
/// brackets; instructions additionally show their *effective* precision,
/// so an analyst can see aggregate overrides at a glance.
pub fn render_tree(tree: &StructureTree, cfg: &Config) -> String {
    let mut out = String::new();
    for (mi, m) in tree.modules.iter().enumerate() {
        let node = NodeRef::Module(mi);
        let _ = writeln!(out, "{} {}", badge(cfg.node_flag(tree, node)), tree.label(node));
        for (fi, fun) in m.funcs.iter().enumerate() {
            let node = NodeRef::Func(mi, fi);
            let _ = writeln!(out, "  {} {}", badge(cfg.node_flag(tree, node)), tree.label(node));
            for (bi, blk) in fun.blocks.iter().enumerate() {
                let node = NodeRef::Block(mi, fi, bi);
                let _ =
                    writeln!(out, "    {} {}", badge(cfg.node_flag(tree, node)), tree.label(node));
                for (ii, e) in blk.insns.iter().enumerate() {
                    let node = NodeRef::Insn(mi, fi, bi, ii);
                    let eff = cfg.effective(tree, e.id);
                    let _ = writeln!(
                        out,
                        "      {} [{}] {}",
                        badge(cfg.node_flag(tree, node)),
                        eff.token(),
                        tree.label(node)
                    );
                }
            }
        }
    }
    out
}

fn badge(f: Option<Flag>) -> String {
    match f {
        Some(fl) => format!("({})", fl.token()),
        None => "( )".to_string(),
    }
}

/// Cycle a node's flag: none → single → double → ignore → none. A
/// reduced-format flag (set by a lattice search, not by toggling) steps
/// back to double first so the classic cycle is re-entered.
/// Returns the new explicit flag.
pub fn toggle(tree: &StructureTree, cfg: &mut Config, node: NodeRef) -> Option<Flag> {
    let next = match cfg.node_flag(tree, node) {
        None => Some(Flag::Single),
        Some(Flag::Single) => Some(Flag::Double),
        Some(Flag::Double) => Some(Flag::Ignore),
        Some(Flag::Ignore) => None,
        Some(Flag::Half | Flag::Bf16 | Flag::Custom { .. }) => Some(Flag::Double),
    };
    match next {
        Some(f) => {
            cfg.set_node(tree, node, f);
        }
        None => {
            cfg.clear_node(tree, node);
        }
    }
    next
}

/// Summary statistics shown in the editor's status bar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeStats {
    /// Total candidate instructions.
    pub candidates: usize,
    /// Candidates effectively replaced with single precision.
    pub replaced: usize,
    /// Candidates effectively ignored.
    pub ignored: usize,
}

/// Compute summary statistics for the status display.
pub fn stats(tree: &StructureTree, cfg: &Config) -> TreeStats {
    let mut s = TreeStats { candidates: 0, replaced: 0, ignored: 0 };
    for id in tree.all_insns() {
        s.candidates += 1;
        match cfg.effective(tree, id) {
            Flag::Ignore => s.ignored += 1,
            f if f.is_replacement() => s.replaced += 1,
            _ => {}
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpvm::isa::*;
    use fpvm::program::Program;

    fn tree() -> (Program, StructureTree) {
        let mut p = Program::new(1 << 12);
        let m = p.add_module("m");
        let f = p.add_function(m, "main");
        let b = p.add_block(f);
        p.funcs[f.0 as usize].entry = b;
        p.entry = f;
        for _ in 0..3 {
            p.push_insn(
                b,
                InstKind::FpArith {
                    op: FpAluOp::Add,
                    prec: Prec::Double,
                    packed: false,
                    dst: Xmm(0),
                    src: RM::Reg(Xmm(1)),
                },
            );
        }
        let t = StructureTree::build(&p);
        (p, t)
    }

    #[test]
    fn toggle_cycles_through_states() {
        let (_p, t) = tree();
        let mut cfg = Config::new();
        let node = t.roots()[0];
        assert_eq!(toggle(&t, &mut cfg, node), Some(Flag::Single));
        assert_eq!(toggle(&t, &mut cfg, node), Some(Flag::Double));
        assert_eq!(toggle(&t, &mut cfg, node), Some(Flag::Ignore));
        assert_eq!(toggle(&t, &mut cfg, node), None);
        assert!(cfg.is_empty());
    }

    #[test]
    fn render_shows_effective_precision() {
        let (_p, t) = tree();
        let mut cfg = Config::new();
        cfg.set_node(&t, t.roots()[0], Flag::Single);
        let s = render_tree(&t, &cfg);
        assert!(s.contains("(s) MODULE m"));
        // instructions show effective 's' even without explicit flags
        assert!(s.contains("( ) [s]"));
    }

    #[test]
    fn stats_count_effective_flags() {
        let (_p, t) = tree();
        let ids = t.all_insns();
        let mut cfg = Config::new();
        cfg.set_insn(ids[0], Flag::Single);
        cfg.set_insn(ids[1], Flag::Ignore);
        let s = stats(&t, &cfg);
        assert_eq!(s, TreeStats { candidates: 3, replaced: 1, ignored: 1 });
    }
}
