//! Precision configurations: `p → {precision level | ignore}` with
//! parent-overrides-children aggregation (§2.1), generalized from the
//! paper's two-level `{single, double}` scheme to the full precision
//! lattice (half, bfloat16, custom-mantissa formats; see `mpfmt`).

use crate::tree::{NodeRef, StructureTree};
use fpvm::isa::{BlockId, FuncId, InsnId, ModuleId};
use mpfmt::Format;
use std::collections::BTreeMap;
use std::fmt;

/// A precision flag, as written in the first column of a configuration
/// file: `s` (single), `d` (double), `i` (ignore), `h` (half), `b`
/// (bfloat16), or `m<M>e<E>` (custom reduced format).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Flag {
    /// Replace with the single-precision equivalent.
    Single,
    /// Keep double precision (but still instrument with a checking snippet
    /// once any replacement exists anywhere).
    Double,
    /// Leave the instruction completely untouched — no snippet, no checks
    /// (for unusual constructs like FP-trick random number generators).
    Ignore,
    /// Replace with emulated IEEE binary16.
    Half,
    /// Replace with emulated bfloat16.
    Bf16,
    /// Replace with an emulated custom reduced format (embedded in
    /// binary32; see `mpfmt::Format::Custom`).
    Custom {
        /// Explicit mantissa bits (`<= 23`).
        mantissa_bits: u8,
        /// Exponent bits (`1..=8`).
        exp_bits: u8,
    },
}

/// A flag token that is not recognized by the configuration grammar.
///
/// Produced by [`Flag::from_token`] (and through it, the config-text
/// parser): unknown flags are an error, never silently treated as
/// unflagged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownFlagError {
    /// The offending token as written.
    pub token: String,
    /// A more specific reason, when the token matched the custom-format
    /// shape but described an invalid format.
    pub detail: Option<String>,
}

impl fmt::Display for UnknownFlagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.detail {
            Some(d) => write!(f, "unknown precision flag `{}`: {d}", self.token),
            None => write!(
                f,
                "unknown precision flag `{}` (expected s/d/i/h/b or m<M>e<E>)",
                self.token
            ),
        }
    }
}

impl std::error::Error for UnknownFlagError {}

impl Flag {
    /// The token form used in configuration files: a single letter for
    /// the named levels, `m<M>e<E>` for custom formats.
    pub fn token(self) -> String {
        match self {
            Flag::Single => "s".to_string(),
            Flag::Double => "d".to_string(),
            Flag::Ignore => "i".to_string(),
            Flag::Half => "h".to_string(),
            Flag::Bf16 => "b".to_string(),
            Flag::Custom { mantissa_bits, exp_bits } => format!("m{mantissa_bits}e{exp_bits}"),
        }
    }

    /// Parse the single-character forms.
    pub fn from_letter(c: char) -> Option<Flag> {
        match c {
            's' => Some(Flag::Single),
            'd' => Some(Flag::Double),
            'i' => Some(Flag::Ignore),
            'h' => Some(Flag::Half),
            'b' => Some(Flag::Bf16),
            _ => None,
        }
    }

    /// Parse a flag token (single letter or `m<M>e<E>`). Unknown tokens
    /// are a named error — callers must surface it, not default.
    pub fn from_token(s: &str) -> Result<Flag, UnknownFlagError> {
        let mut it = s.chars();
        if let (Some(c), None) = (it.next(), it.next()) {
            return Flag::from_letter(c)
                .ok_or_else(|| UnknownFlagError { token: s.to_string(), detail: None });
        }
        if s.starts_with('m') && s.len() > 1 {
            return match Format::parse(s) {
                Ok(f) => Ok(Flag::from_format(f)),
                Err(e) => {
                    Err(UnknownFlagError { token: s.to_string(), detail: Some(e.to_string()) })
                }
            };
        }
        Err(UnknownFlagError { token: s.to_string(), detail: None })
    }

    /// The numeric format this flag selects; `None` for [`Flag::Ignore`].
    pub fn format(self) -> Option<Format> {
        match self {
            Flag::Single => Some(Format::Single),
            Flag::Double => Some(Format::Double),
            Flag::Ignore => None,
            Flag::Half => Some(Format::Half),
            Flag::Bf16 => Some(Format::Bf16),
            Flag::Custom { mantissa_bits, exp_bits } => {
                Some(Format::Custom { mantissa_bits, exp_bits })
            }
        }
    }

    /// The flag selecting `f`, normalizing custom parameter pairs that
    /// coincide with a named format (so flag equality matches format
    /// equality).
    pub fn from_format(f: Format) -> Flag {
        match f {
            Format::Double => Flag::Double,
            Format::Single | Format::Custom { mantissa_bits: 23, exp_bits: 8 } => Flag::Single,
            Format::Half | Format::Custom { mantissa_bits: 10, exp_bits: 5 } => Flag::Half,
            Format::Bf16 | Format::Custom { mantissa_bits: 7, exp_bits: 8 } => Flag::Bf16,
            Format::Custom { mantissa_bits, exp_bits } => Flag::Custom { mantissa_bits, exp_bits },
        }
    }

    /// True if this flag replaces the double with a narrower format
    /// (single or anything below it in the lattice).
    pub fn is_replacement(self) -> bool {
        matches!(self, Flag::Single | Flag::Half | Flag::Bf16 | Flag::Custom { .. })
    }

    /// Mantissa width of the selected format; the lattice's depth order
    /// (fewer bits = deeper). `None` for [`Flag::Ignore`].
    pub fn mantissa_bits(self) -> Option<u32> {
        self.format().map(|f| f.mantissa_bits())
    }
}

/// Parse a comma-separated lattice spec (`"s,h"`, `"s,b,m5e6"`) into
/// the ordered list of replacement levels a search descends through.
/// Every token must name a replacement format — `d`/`i` have no place
/// in a descent order — and the spec may not be empty.
pub fn parse_lattice(spec: &str) -> Result<Vec<Flag>, String> {
    let mut out = Vec::new();
    for tok in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        let fl = Flag::from_token(tok).map_err(|e| e.to_string())?;
        if !fl.is_replacement() {
            return Err(format!(
                "lattice level `{tok}` is not a replacement format (expected s/h/b or m<M>e<E>)"
            ));
        }
        out.push(fl);
    }
    if out.is_empty() {
        return Err(format!("empty lattice spec `{spec}`"));
    }
    Ok(out)
}

/// Inverse of [`parse_lattice`]: the comma-joined token form used by
/// manifests and job specs.
pub fn lattice_tokens(lattice: &[Flag]) -> String {
    lattice.iter().map(|f| f.token()).collect::<Vec<_>>().join(",")
}

/// A precision configuration: explicit flags at any level of the program
/// structure. An aggregate's flag overrides all flags below it; an
/// instruction with no flag anywhere on its chain defaults to `Double`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    /// Explicit module-level flags.
    pub modules: BTreeMap<u32, Flag>,
    /// Explicit function-level flags.
    pub funcs: BTreeMap<u32, Flag>,
    /// Explicit block-level flags.
    pub blocks: BTreeMap<u32, Flag>,
    /// Explicit instruction-level flags.
    pub insns: BTreeMap<u32, Flag>,
}

impl Config {
    /// The empty configuration (everything defaults to double).
    pub fn new() -> Self {
        Config::default()
    }

    /// Set a module flag.
    pub fn set_module(&mut self, m: ModuleId, f: Flag) -> &mut Self {
        self.modules.insert(m.0, f);
        self
    }

    /// Set a function flag.
    pub fn set_func(&mut self, x: FuncId, f: Flag) -> &mut Self {
        self.funcs.insert(x.0, f);
        self
    }

    /// Set a block flag.
    pub fn set_block(&mut self, b: BlockId, f: Flag) -> &mut Self {
        self.blocks.insert(b.0, f);
        self
    }

    /// Set an instruction flag.
    pub fn set_insn(&mut self, i: InsnId, f: Flag) -> &mut Self {
        self.insns.insert(i.0, f);
        self
    }

    /// Set a flag on an arbitrary tree node.
    pub fn set_node(&mut self, tree: &StructureTree, node: NodeRef, f: Flag) -> &mut Self {
        match node {
            NodeRef::Module(mi) => self.set_module(tree.modules[mi].id, f),
            NodeRef::Func(mi, fi) => self.set_func(tree.modules[mi].funcs[fi].id, f),
            NodeRef::Block(mi, fi, bi) => {
                self.set_block(tree.modules[mi].funcs[fi].blocks[bi].id, f)
            }
            NodeRef::Insn(mi, fi, bi, ii) => {
                self.set_insn(tree.modules[mi].funcs[fi].blocks[bi].insns[ii].id, f)
            }
        }
    }

    /// Remove the flag from a tree node, if any.
    pub fn clear_node(&mut self, tree: &StructureTree, node: NodeRef) -> &mut Self {
        match node {
            NodeRef::Module(mi) => {
                self.modules.remove(&tree.modules[mi].id.0);
            }
            NodeRef::Func(mi, fi) => {
                self.funcs.remove(&tree.modules[mi].funcs[fi].id.0);
            }
            NodeRef::Block(mi, fi, bi) => {
                self.blocks.remove(&tree.modules[mi].funcs[fi].blocks[bi].id.0);
            }
            NodeRef::Insn(mi, fi, bi, ii) => {
                self.insns.remove(&tree.modules[mi].funcs[fi].blocks[bi].insns[ii].id.0);
            }
        }
        self
    }

    /// Explicit flag on a node, if any.
    pub fn node_flag(&self, tree: &StructureTree, node: NodeRef) -> Option<Flag> {
        match node {
            NodeRef::Module(mi) => self.modules.get(&tree.modules[mi].id.0).copied(),
            NodeRef::Func(mi, fi) => self.funcs.get(&tree.modules[mi].funcs[fi].id.0).copied(),
            NodeRef::Block(mi, fi, bi) => {
                self.blocks.get(&tree.modules[mi].funcs[fi].blocks[bi].id.0).copied()
            }
            NodeRef::Insn(mi, fi, bi, ii) => {
                self.insns.get(&tree.modules[mi].funcs[fi].blocks[bi].insns[ii].id.0).copied()
            }
        }
    }

    /// Effective flag of a candidate instruction under parent-override
    /// semantics: the *outermost* flagged ancestor wins (an aggregate flag
    /// "overrides any flags specified for its children"); with no flag on
    /// the chain, the default is `Double`.
    pub fn effective(&self, tree: &StructureTree, id: InsnId) -> Flag {
        let Some((b, f, m)) = tree.parents(id) else {
            return Flag::Double;
        };
        if let Some(&fl) = self.modules.get(&m.0) {
            return fl;
        }
        if let Some(&fl) = self.funcs.get(&f.0) {
            return fl;
        }
        if let Some(&fl) = self.blocks.get(&b.0) {
            return fl;
        }
        self.insns.get(&id.0).copied().unwrap_or(Flag::Double)
    }

    /// Union of two configurations' *single* replacements: used to compose
    /// the "final" configuration from all individually passing
    /// configurations (§2.2). Flags other than `Single` are not merged.
    pub fn union_single(&self, other: &Config) -> Config {
        let mut out = self.clone();
        for (k, v) in &other.modules {
            if *v == Flag::Single {
                out.modules.insert(*k, *v);
            }
        }
        for (k, v) in &other.funcs {
            if *v == Flag::Single {
                out.funcs.insert(*k, *v);
            }
        }
        for (k, v) in &other.blocks {
            if *v == Flag::Single {
                out.blocks.insert(*k, *v);
            }
        }
        for (k, v) in &other.insns {
            if *v == Flag::Single {
                out.insns.insert(*k, *v);
            }
        }
        out
    }

    /// Union of two configurations' replacements across the whole
    /// lattice: `other`'s replacement flags are merged in, but an entry
    /// never *widens* — where both sides flag the same node, the format
    /// with the narrower mantissa wins. Non-replacement flags in
    /// `other` are not merged (same contract as [`Config::union_single`]).
    pub fn union_replacements(&self, other: &Config) -> Config {
        fn merge(dst: &mut BTreeMap<u32, Flag>, src: &BTreeMap<u32, Flag>) {
            for (k, v) in src {
                if !v.is_replacement() {
                    continue;
                }
                let keep = matches!(
                    dst.get(k),
                    Some(cur) if cur.is_replacement()
                        && cur.mantissa_bits() <= v.mantissa_bits()
                );
                if !keep {
                    dst.insert(*k, *v);
                }
            }
        }
        let mut out = self.clone();
        merge(&mut out.modules, &other.modules);
        merge(&mut out.funcs, &other.funcs);
        merge(&mut out.blocks, &other.blocks);
        merge(&mut out.insns, &other.insns);
        out
    }

    /// Candidate instructions whose effective flag is a replacement
    /// (single or any reduced format).
    pub fn replaced_insns(&self, tree: &StructureTree) -> Vec<InsnId> {
        tree.all_insns().into_iter().filter(|&i| self.effective(tree, i).is_replacement()).collect()
    }

    /// A canonical key identifying the *semantic* replacement set: one
    /// packed word per effectively-replaced candidate, carrying the
    /// instruction id and the target format's mantissa/exponent widths.
    /// Two configurations with the same key rewrite to the same program,
    /// so evaluation caches must key on this (the id set alone no longer
    /// suffices once formats diverge).
    pub fn replacement_key(&self, tree: &StructureTree) -> Vec<u64> {
        let mut key: Vec<u64> = tree
            .all_insns()
            .into_iter()
            .filter_map(|i| {
                let fl = self.effective(tree, i);
                if !fl.is_replacement() {
                    return None;
                }
                let f = fl.format().expect("replacement flags always carry a format");
                Some(((i.0 as u64) << 16) | ((f.mantissa_bits() as u64) << 8) | f.exp_bits() as u64)
            })
            .collect();
        key.sort_unstable();
        key
    }

    /// Static replacement percentage: replaced candidates / all candidates.
    pub fn static_replacement_pct(&self, tree: &StructureTree) -> f64 {
        let total = tree.candidate_count();
        if total == 0 {
            return 0.0;
        }
        100.0 * self.replaced_insns(tree).len() as f64 / total as f64
    }

    /// True if any instruction is effectively replaced (at any lattice
    /// level) — which forces the rewriter to instrument *every* FP
    /// instruction (§2.3).
    pub fn any_single(&self, tree: &StructureTree) -> bool {
        tree.all_insns().iter().any(|&i| self.effective(tree, i).is_replacement())
    }

    /// Number of explicit flag entries (any level).
    pub fn len(&self) -> usize {
        self.modules.len() + self.funcs.len() + self.blocks.len() + self.insns.len()
    }

    /// True if no explicit flags are set.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::StructureTree;
    use fpvm::isa::*;
    use fpvm::program::Program;

    fn prog() -> Program {
        let mut p = Program::new(1 << 12);
        let m = p.add_module("m");
        let f1 = p.add_function(m, "main");
        let b1 = p.add_block(f1);
        p.funcs[f1.0 as usize].entry = b1;
        p.entry = f1;
        let b2 = p.add_block(f1);
        for b in [b1, b2] {
            for _ in 0..2 {
                p.push_insn(
                    b,
                    InstKind::FpArith {
                        op: FpAluOp::Add,
                        prec: Prec::Double,
                        packed: false,
                        dst: Xmm(0),
                        src: RM::Reg(Xmm(1)),
                    },
                );
            }
        }
        p.block_mut(b1).term = Terminator::Jmp(b2);
        p
    }

    #[test]
    fn default_is_double() {
        let p = prog();
        let t = StructureTree::build(&p);
        let c = Config::new();
        for i in t.all_insns() {
            assert_eq!(c.effective(&t, i), Flag::Double);
        }
        assert!(!c.any_single(&t));
        assert_eq!(c.static_replacement_pct(&t), 0.0);
    }

    #[test]
    fn parent_overrides_child() {
        let p = prog();
        let t = StructureTree::build(&p);
        let ids = t.all_insns();
        let mut c = Config::new();
        // instruction says single…
        c.set_insn(ids[0], Flag::Single);
        assert_eq!(c.effective(&t, ids[0]), Flag::Single);
        // …but its function says double: function wins.
        let (_, f, _) = t.parents(ids[0]).unwrap();
        c.set_func(f, Flag::Double);
        assert_eq!(c.effective(&t, ids[0]), Flag::Double);
        // …and the module saying single overrides the function.
        let m = t.func_parent(f).unwrap();
        c.set_module(m, Flag::Single);
        assert_eq!(c.effective(&t, ids[0]), Flag::Single);
        assert_eq!(c.effective(&t, ids[3]), Flag::Single);
    }

    #[test]
    fn block_level_flags() {
        let p = prog();
        let t = StructureTree::build(&p);
        let ids = t.all_insns();
        let (b0, _, _) = t.parents(ids[0]).unwrap();
        let mut c = Config::new();
        c.set_block(b0, Flag::Single);
        assert_eq!(c.effective(&t, ids[0]), Flag::Single);
        assert_eq!(c.effective(&t, ids[1]), Flag::Single);
        assert_eq!(c.effective(&t, ids[2]), Flag::Double);
        assert_eq!(c.static_replacement_pct(&t), 50.0);
    }

    #[test]
    fn union_merges_only_single() {
        let p = prog();
        let t = StructureTree::build(&p);
        let ids = t.all_insns();
        let mut a = Config::new();
        a.set_insn(ids[0], Flag::Single);
        let mut b = Config::new();
        b.set_insn(ids[1], Flag::Single);
        b.set_insn(ids[2], Flag::Double); // not merged
        let u = a.union_single(&b);
        assert_eq!(u.effective(&t, ids[0]), Flag::Single);
        assert_eq!(u.effective(&t, ids[1]), Flag::Single);
        assert_eq!(u.effective(&t, ids[2]), Flag::Double);
        assert_eq!(u.insns.len(), 2);
    }

    #[test]
    fn ignore_flag_propagates() {
        let p = prog();
        let t = StructureTree::build(&p);
        let ids = t.all_insns();
        let (_, f, _) = t.parents(ids[0]).unwrap();
        let mut c = Config::new();
        c.set_func(f, Flag::Ignore);
        for i in &ids {
            assert_eq!(c.effective(&t, *i), Flag::Ignore);
        }
    }

    #[test]
    fn flag_tokens_round_trip() {
        let flags = [
            Flag::Single,
            Flag::Double,
            Flag::Ignore,
            Flag::Half,
            Flag::Bf16,
            Flag::Custom { mantissa_bits: 5, exp_bits: 4 },
        ];
        for f in flags {
            assert_eq!(Flag::from_token(&f.token()), Ok(f));
        }
        // Custom tokens naming a named format normalize to it.
        assert_eq!(Flag::from_token("m10e5"), Ok(Flag::Half));
        assert_eq!(Flag::from_token("m7e8"), Ok(Flag::Bf16));
        assert_eq!(Flag::from_token("m23e8"), Ok(Flag::Single));
    }

    #[test]
    fn unknown_flag_tokens_are_named_errors() {
        for bad in ["x", "q", "ss", "m", "m24e8", "m5e9", "mXeY", ""] {
            let e = Flag::from_token(bad).unwrap_err();
            assert_eq!(e.token, bad);
        }
        // Invalid custom formats carry the specific reason.
        let e = Flag::from_token("m24e8").unwrap_err();
        assert!(e.detail.is_some());
        assert!(e.to_string().contains("m24e8"));
    }

    #[test]
    fn lattice_specs_parse_and_round_trip() {
        let l = parse_lattice("s,h").unwrap();
        assert_eq!(l, vec![Flag::Single, Flag::Half]);
        assert_eq!(lattice_tokens(&l), "s,h");
        let l = parse_lattice(" s , b , m5e6 ").unwrap();
        assert_eq!(
            l,
            vec![Flag::Single, Flag::Bf16, Flag::Custom { mantissa_bits: 5, exp_bits: 6 }]
        );
        assert_eq!(lattice_tokens(&l), "s,b,m5e6");
        // Non-replacement levels and junk are named errors.
        assert!(parse_lattice("s,d").unwrap_err().contains("not a replacement"));
        assert!(parse_lattice("s,i").unwrap_err().contains("not a replacement"));
        assert!(parse_lattice("s,x").unwrap_err().contains("unknown precision flag"));
        assert!(parse_lattice("").unwrap_err().contains("empty"));
        assert!(parse_lattice(" , ").unwrap_err().contains("empty"));
    }

    #[test]
    fn reduced_flags_count_as_replacements() {
        let p = prog();
        let t = StructureTree::build(&p);
        let ids = t.all_insns();
        let mut c = Config::new();
        c.set_insn(ids[0], Flag::Half);
        assert!(c.any_single(&t));
        assert_eq!(c.replaced_insns(&t), vec![ids[0]]);
        assert_eq!(c.static_replacement_pct(&t), 25.0);
    }

    #[test]
    fn union_replacements_keeps_the_narrower_format() {
        let p = prog();
        let t = StructureTree::build(&p);
        let ids = t.all_insns();
        let mut a = Config::new();
        a.set_insn(ids[0], Flag::Half); // 10 mantissa bits
        a.set_insn(ids[1], Flag::Single);
        let mut b = Config::new();
        b.set_insn(ids[0], Flag::Single); // wider: must not override Half
        b.set_insn(ids[1], Flag::Bf16); // narrower: overrides Single
        b.set_insn(ids[2], Flag::Double); // not merged
        let u = a.union_replacements(&b);
        assert_eq!(u.effective(&t, ids[0]), Flag::Half);
        assert_eq!(u.effective(&t, ids[1]), Flag::Bf16);
        assert_eq!(u.effective(&t, ids[2]), Flag::Double);
    }

    #[test]
    fn replacement_key_distinguishes_formats() {
        let p = prog();
        let t = StructureTree::build(&p);
        let ids = t.all_insns();
        let mut a = Config::new();
        a.set_insn(ids[0], Flag::Single);
        let mut b = Config::new();
        b.set_insn(ids[0], Flag::Half);
        assert_ne!(a.replacement_key(&t), b.replacement_key(&t));
        // Same semantic replacement set ⇒ same key, even via aggregates.
        let (blk, _, _) = t.parents(ids[0]).unwrap();
        let mut c = Config::new();
        c.set_block(blk, Flag::Single);
        let mut d = Config::new();
        for e in &t.modules[0].funcs[0].blocks[0].insns {
            d.set_insn(e.id, Flag::Single);
        }
        assert_eq!(c.replacement_key(&t), d.replacement_key(&t));
    }

    #[test]
    fn set_and_clear_node() {
        let p = prog();
        let t = StructureTree::build(&p);
        let root = t.roots()[0];
        let mut c = Config::new();
        c.set_node(&t, root, Flag::Single);
        assert!(c.any_single(&t));
        assert_eq!(c.node_flag(&t, root), Some(Flag::Single));
        c.clear_node(&t, root);
        assert!(c.is_empty());
    }
}
