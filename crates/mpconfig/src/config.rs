//! Precision configurations: `p → {single, double, ignore}` with
//! parent-overrides-children aggregation (§2.1).

use crate::tree::{NodeRef, StructureTree};
use fpvm::isa::{BlockId, FuncId, InsnId, ModuleId};
use std::collections::BTreeMap;

/// A precision flag, as written in the first column of a configuration
/// file: `s` (single), `d` (double), or `i` (ignore).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Flag {
    /// Replace with the single-precision equivalent.
    Single,
    /// Keep double precision (but still instrument with a checking snippet
    /// once any replacement exists anywhere).
    Double,
    /// Leave the instruction completely untouched — no snippet, no checks
    /// (for unusual constructs like FP-trick random number generators).
    Ignore,
}

impl Flag {
    /// The single-character form used in configuration files.
    pub fn letter(self) -> char {
        match self {
            Flag::Single => 's',
            Flag::Double => 'd',
            Flag::Ignore => 'i',
        }
    }

    /// Parse the single-character form.
    pub fn from_letter(c: char) -> Option<Flag> {
        match c {
            's' => Some(Flag::Single),
            'd' => Some(Flag::Double),
            'i' => Some(Flag::Ignore),
            _ => None,
        }
    }
}

/// A precision configuration: explicit flags at any level of the program
/// structure. An aggregate's flag overrides all flags below it; an
/// instruction with no flag anywhere on its chain defaults to `Double`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    /// Explicit module-level flags.
    pub modules: BTreeMap<u32, Flag>,
    /// Explicit function-level flags.
    pub funcs: BTreeMap<u32, Flag>,
    /// Explicit block-level flags.
    pub blocks: BTreeMap<u32, Flag>,
    /// Explicit instruction-level flags.
    pub insns: BTreeMap<u32, Flag>,
}

impl Config {
    /// The empty configuration (everything defaults to double).
    pub fn new() -> Self {
        Config::default()
    }

    /// Set a module flag.
    pub fn set_module(&mut self, m: ModuleId, f: Flag) -> &mut Self {
        self.modules.insert(m.0, f);
        self
    }

    /// Set a function flag.
    pub fn set_func(&mut self, x: FuncId, f: Flag) -> &mut Self {
        self.funcs.insert(x.0, f);
        self
    }

    /// Set a block flag.
    pub fn set_block(&mut self, b: BlockId, f: Flag) -> &mut Self {
        self.blocks.insert(b.0, f);
        self
    }

    /// Set an instruction flag.
    pub fn set_insn(&mut self, i: InsnId, f: Flag) -> &mut Self {
        self.insns.insert(i.0, f);
        self
    }

    /// Set a flag on an arbitrary tree node.
    pub fn set_node(&mut self, tree: &StructureTree, node: NodeRef, f: Flag) -> &mut Self {
        match node {
            NodeRef::Module(mi) => self.set_module(tree.modules[mi].id, f),
            NodeRef::Func(mi, fi) => self.set_func(tree.modules[mi].funcs[fi].id, f),
            NodeRef::Block(mi, fi, bi) => {
                self.set_block(tree.modules[mi].funcs[fi].blocks[bi].id, f)
            }
            NodeRef::Insn(mi, fi, bi, ii) => {
                self.set_insn(tree.modules[mi].funcs[fi].blocks[bi].insns[ii].id, f)
            }
        }
    }

    /// Remove the flag from a tree node, if any.
    pub fn clear_node(&mut self, tree: &StructureTree, node: NodeRef) -> &mut Self {
        match node {
            NodeRef::Module(mi) => {
                self.modules.remove(&tree.modules[mi].id.0);
            }
            NodeRef::Func(mi, fi) => {
                self.funcs.remove(&tree.modules[mi].funcs[fi].id.0);
            }
            NodeRef::Block(mi, fi, bi) => {
                self.blocks.remove(&tree.modules[mi].funcs[fi].blocks[bi].id.0);
            }
            NodeRef::Insn(mi, fi, bi, ii) => {
                self.insns.remove(&tree.modules[mi].funcs[fi].blocks[bi].insns[ii].id.0);
            }
        }
        self
    }

    /// Explicit flag on a node, if any.
    pub fn node_flag(&self, tree: &StructureTree, node: NodeRef) -> Option<Flag> {
        match node {
            NodeRef::Module(mi) => self.modules.get(&tree.modules[mi].id.0).copied(),
            NodeRef::Func(mi, fi) => self.funcs.get(&tree.modules[mi].funcs[fi].id.0).copied(),
            NodeRef::Block(mi, fi, bi) => {
                self.blocks.get(&tree.modules[mi].funcs[fi].blocks[bi].id.0).copied()
            }
            NodeRef::Insn(mi, fi, bi, ii) => {
                self.insns.get(&tree.modules[mi].funcs[fi].blocks[bi].insns[ii].id.0).copied()
            }
        }
    }

    /// Effective flag of a candidate instruction under parent-override
    /// semantics: the *outermost* flagged ancestor wins (an aggregate flag
    /// "overrides any flags specified for its children"); with no flag on
    /// the chain, the default is `Double`.
    pub fn effective(&self, tree: &StructureTree, id: InsnId) -> Flag {
        let Some((b, f, m)) = tree.parents(id) else {
            return Flag::Double;
        };
        if let Some(&fl) = self.modules.get(&m.0) {
            return fl;
        }
        if let Some(&fl) = self.funcs.get(&f.0) {
            return fl;
        }
        if let Some(&fl) = self.blocks.get(&b.0) {
            return fl;
        }
        self.insns.get(&id.0).copied().unwrap_or(Flag::Double)
    }

    /// Union of two configurations' *single* replacements: used to compose
    /// the "final" configuration from all individually passing
    /// configurations (§2.2). Flags other than `Single` are not merged.
    pub fn union_single(&self, other: &Config) -> Config {
        let mut out = self.clone();
        for (k, v) in &other.modules {
            if *v == Flag::Single {
                out.modules.insert(*k, *v);
            }
        }
        for (k, v) in &other.funcs {
            if *v == Flag::Single {
                out.funcs.insert(*k, *v);
            }
        }
        for (k, v) in &other.blocks {
            if *v == Flag::Single {
                out.blocks.insert(*k, *v);
            }
        }
        for (k, v) in &other.insns {
            if *v == Flag::Single {
                out.insns.insert(*k, *v);
            }
        }
        out
    }

    /// Candidate instructions whose effective flag is `Single`.
    pub fn replaced_insns(&self, tree: &StructureTree) -> Vec<InsnId> {
        tree.all_insns().into_iter().filter(|&i| self.effective(tree, i) == Flag::Single).collect()
    }

    /// Static replacement percentage: replaced candidates / all candidates.
    pub fn static_replacement_pct(&self, tree: &StructureTree) -> f64 {
        let total = tree.candidate_count();
        if total == 0 {
            return 0.0;
        }
        100.0 * self.replaced_insns(tree).len() as f64 / total as f64
    }

    /// True if any instruction is effectively replaced — which forces the
    /// rewriter to instrument *every* FP instruction (§2.3).
    pub fn any_single(&self, tree: &StructureTree) -> bool {
        tree.all_insns().iter().any(|&i| self.effective(tree, i) == Flag::Single)
    }

    /// Number of explicit flag entries (any level).
    pub fn len(&self) -> usize {
        self.modules.len() + self.funcs.len() + self.blocks.len() + self.insns.len()
    }

    /// True if no explicit flags are set.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::StructureTree;
    use fpvm::isa::*;
    use fpvm::program::Program;

    fn prog() -> Program {
        let mut p = Program::new(1 << 12);
        let m = p.add_module("m");
        let f1 = p.add_function(m, "main");
        let b1 = p.add_block(f1);
        p.funcs[f1.0 as usize].entry = b1;
        p.entry = f1;
        let b2 = p.add_block(f1);
        for b in [b1, b2] {
            for _ in 0..2 {
                p.push_insn(
                    b,
                    InstKind::FpArith {
                        op: FpAluOp::Add,
                        prec: Prec::Double,
                        packed: false,
                        dst: Xmm(0),
                        src: RM::Reg(Xmm(1)),
                    },
                );
            }
        }
        p.block_mut(b1).term = Terminator::Jmp(b2);
        p
    }

    #[test]
    fn default_is_double() {
        let p = prog();
        let t = StructureTree::build(&p);
        let c = Config::new();
        for i in t.all_insns() {
            assert_eq!(c.effective(&t, i), Flag::Double);
        }
        assert!(!c.any_single(&t));
        assert_eq!(c.static_replacement_pct(&t), 0.0);
    }

    #[test]
    fn parent_overrides_child() {
        let p = prog();
        let t = StructureTree::build(&p);
        let ids = t.all_insns();
        let mut c = Config::new();
        // instruction says single…
        c.set_insn(ids[0], Flag::Single);
        assert_eq!(c.effective(&t, ids[0]), Flag::Single);
        // …but its function says double: function wins.
        let (_, f, _) = t.parents(ids[0]).unwrap();
        c.set_func(f, Flag::Double);
        assert_eq!(c.effective(&t, ids[0]), Flag::Double);
        // …and the module saying single overrides the function.
        let m = t.func_parent(f).unwrap();
        c.set_module(m, Flag::Single);
        assert_eq!(c.effective(&t, ids[0]), Flag::Single);
        assert_eq!(c.effective(&t, ids[3]), Flag::Single);
    }

    #[test]
    fn block_level_flags() {
        let p = prog();
        let t = StructureTree::build(&p);
        let ids = t.all_insns();
        let (b0, _, _) = t.parents(ids[0]).unwrap();
        let mut c = Config::new();
        c.set_block(b0, Flag::Single);
        assert_eq!(c.effective(&t, ids[0]), Flag::Single);
        assert_eq!(c.effective(&t, ids[1]), Flag::Single);
        assert_eq!(c.effective(&t, ids[2]), Flag::Double);
        assert_eq!(c.static_replacement_pct(&t), 50.0);
    }

    #[test]
    fn union_merges_only_single() {
        let p = prog();
        let t = StructureTree::build(&p);
        let ids = t.all_insns();
        let mut a = Config::new();
        a.set_insn(ids[0], Flag::Single);
        let mut b = Config::new();
        b.set_insn(ids[1], Flag::Single);
        b.set_insn(ids[2], Flag::Double); // not merged
        let u = a.union_single(&b);
        assert_eq!(u.effective(&t, ids[0]), Flag::Single);
        assert_eq!(u.effective(&t, ids[1]), Flag::Single);
        assert_eq!(u.effective(&t, ids[2]), Flag::Double);
        assert_eq!(u.insns.len(), 2);
    }

    #[test]
    fn ignore_flag_propagates() {
        let p = prog();
        let t = StructureTree::build(&p);
        let ids = t.all_insns();
        let (_, f, _) = t.parents(ids[0]).unwrap();
        let mut c = Config::new();
        c.set_func(f, Flag::Ignore);
        for i in &ids {
            assert_eq!(c.effective(&t, *i), Flag::Ignore);
        }
    }

    #[test]
    fn set_and_clear_node() {
        let p = prog();
        let t = StructureTree::build(&p);
        let root = t.roots()[0];
        let mut c = Config::new();
        c.set_node(&t, root, Flag::Single);
        assert!(c.any_single(&t));
        assert_eq!(c.node_flag(&t, root), Some(Flag::Single));
        c.clear_node(&t, root);
        assert!(c.is_empty());
    }
}
