//! # mpconfig — precision configurations
//!
//! The paper's configuration layer (§2.1), generalized to the precision
//! lattice: a mapping from every double-precision candidate instruction
//! to a precision level (`double`, `single`, `half`, `bf16`, or a
//! custom reduced format — see `mpfmt`) or `ignore`, aggregated over
//! the program structure (module → function → block → instruction) with
//! parent-overrides-children semantics; a human-readable text exchange
//! format (Fig. 3); and a terminal analogue of the graphical
//! configuration editor (Fig. 4).

#![warn(missing_docs)]

pub mod config;
pub mod editor;
pub mod format;
pub mod tree;

pub use config::{lattice_tokens, parse_lattice, Config, Flag, UnknownFlagError};
pub use format::{parse_config, print_config, ParseError};
pub use tree::{NodeRef, StructureTree};
