//! Persistent cross-run registry: per-run manifests plus an append-only
//! index.
//!
//! Every traced run directory gains a `manifest.json` describing what
//! ran (program, config hash, tolerance, threads, git describe) and how
//! it went (wall time, final search summary, bench baselines). A
//! [`Registry`] — `~/.craft/runs` by default, overridable with
//! `--registry DIR` or `CRAFT_REGISTRY` — records one line per run in
//! `index.jsonl`, giving `craft runs` / `craft compare latest` and the
//! bench gate a durable, greppable history across working trees.

use crate::json::{self, esc, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Final [`SearchReport`](https://docs.rs) figures worth keeping after
/// the run directory itself is gone.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunSummary {
    /// Candidate instructions considered.
    pub candidates: usize,
    /// Configurations evaluated.
    pub tested: usize,
    /// Static percentage of instructions lowered to single precision.
    pub static_pct: f64,
    /// Dynamic (execution-weighted) percentage lowered.
    pub dynamic_pct: f64,
    /// Whether the final recommended configuration verified.
    pub final_pass: bool,
    /// Evaluations that timed out.
    pub timeouts: usize,
    /// Evaluations that crashed.
    pub crashes: usize,
    /// Evaluation retries.
    pub retries: usize,
    /// Configurations quarantined after repeated faults.
    pub quarantined: usize,
    /// Configurations pruned by the shadow-value analysis.
    pub pruned_by_shadow: usize,
}

/// `manifest.json`: the identity and outcome of one run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunManifest {
    /// Registry-unique run id (`{bench}-{unix}-{pid}-{n}`).
    pub id: String,
    /// Benchmark/program name (e.g. `"ep"`).
    pub bench: String,
    /// Workload class (e.g. `"s"`).
    pub class: String,
    /// Execution backend the run used (`interp`/`fast`/`compiled`;
    /// empty in manifests from before backends existed). `craft
    /// compare` warns when two runs differ here: their cycle counts are
    /// identical by construction, but wall-clock figures are not
    /// comparable across backends.
    pub backend: String,
    /// Precision lattice the search descended, as comma-joined flag
    /// tokens (e.g. `"s,h,b"`). Empty means the classic two-level
    /// double/single search — both in new classic runs and in manifests
    /// written before the lattice existed.
    pub lattice: String,
    /// Cross-process trace/request id (`x-craft-trace`) that caused
    /// this run, as minted by `craft submit` or the daemon's intake.
    /// Empty for in-process runs and for manifests from before trace
    /// propagation existed — the id stitches one client request to the
    /// daemon log line, the job record, and the run-dir spans.
    pub trace_id: String,
    /// FNV-1a hash of the final configuration text, hex.
    pub config_hash: String,
    /// Verification tolerance used.
    pub tol: f64,
    /// Worker threads used by the search.
    pub threads: usize,
    /// `git describe --always --dirty` at run time (empty if
    /// unavailable).
    pub git: String,
    /// Unix seconds when the run started.
    pub created_unix: u64,
    /// Total wall time of the run, microseconds.
    pub wall_us: u64,
    /// Final search summary (absent if the run died before reporting).
    pub summary: Option<RunSummary>,
    /// Per-bench `min_ns` baselines recorded by `bench_gate --record`.
    pub bench_min_ns: BTreeMap<String, f64>,
}

/// File name of a run manifest inside its run directory.
pub const MANIFEST_FILE: &str = "manifest.json";

impl RunManifest {
    /// Serialize as one JSON line (no trailing newline); round-trips
    /// byte-exactly through [`RunManifest::parse`].
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str("{\"id\":");
        esc(&mut s, &self.id);
        s.push_str(",\"bench\":");
        esc(&mut s, &self.bench);
        s.push_str(",\"class\":");
        esc(&mut s, &self.class);
        s.push_str(",\"backend\":");
        esc(&mut s, &self.backend);
        s.push_str(",\"lattice\":");
        esc(&mut s, &self.lattice);
        s.push_str(",\"trace_id\":");
        esc(&mut s, &self.trace_id);
        s.push_str(",\"config_hash\":");
        esc(&mut s, &self.config_hash);
        let _ = write!(s, ",\"tol\":{:?},\"threads\":{}", self.tol, self.threads);
        s.push_str(",\"git\":");
        esc(&mut s, &self.git);
        let _ = write!(s, ",\"created_unix\":{},\"wall_us\":{}", self.created_unix, self.wall_us);
        match &self.summary {
            None => s.push_str(",\"summary\":null"),
            Some(r) => {
                let _ = write!(
                    s,
                    ",\"summary\":{{\"candidates\":{},\"tested\":{},\"static_pct\":{:?},\
                     \"dynamic_pct\":{:?},\"final_pass\":{},\"timeouts\":{},\"crashes\":{},\
                     \"retries\":{},\"quarantined\":{},\"pruned_by_shadow\":{}}}",
                    r.candidates,
                    r.tested,
                    r.static_pct,
                    r.dynamic_pct,
                    r.final_pass,
                    r.timeouts,
                    r.crashes,
                    r.retries,
                    r.quarantined,
                    r.pruned_by_shadow
                );
            }
        }
        s.push_str(",\"bench_min_ns\":{");
        for (i, (k, v)) in self.bench_min_ns.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            esc(&mut s, k);
            let _ = write!(s, ":{v:?}");
        }
        s.push_str("}}");
        s
    }

    /// Parse a manifest produced by [`RunManifest::to_json`].
    pub fn parse(text: &str) -> Result<RunManifest, String> {
        let v = json::parse(text.trim())?;
        let st = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("manifest: missing \"{k}\""))
        };
        let n = |k: &str| -> Result<u64, String> {
            v.get(k).and_then(Value::as_u64).ok_or_else(|| format!("manifest: missing \"{k}\""))
        };
        let summary = match v.get("summary") {
            Some(Value::Null) | None => None,
            Some(r) => {
                let rn = |k: &str| -> Result<u64, String> {
                    r.get(k)
                        .and_then(Value::as_u64)
                        .ok_or_else(|| format!("manifest summary: missing \"{k}\""))
                };
                let rf = |k: &str| -> Result<f64, String> {
                    r.get(k)
                        .and_then(Value::as_f64)
                        .ok_or_else(|| format!("manifest summary: missing \"{k}\""))
                };
                Some(RunSummary {
                    candidates: rn("candidates")? as usize,
                    tested: rn("tested")? as usize,
                    static_pct: rf("static_pct")?,
                    dynamic_pct: rf("dynamic_pct")?,
                    final_pass: r
                        .get("final_pass")
                        .and_then(Value::as_bool)
                        .ok_or("manifest summary: missing \"final_pass\"")?,
                    timeouts: rn("timeouts")? as usize,
                    crashes: rn("crashes")? as usize,
                    retries: rn("retries")? as usize,
                    quarantined: rn("quarantined")? as usize,
                    pruned_by_shadow: rn("pruned_by_shadow")? as usize,
                })
            }
        };
        let mut bench_min_ns = BTreeMap::new();
        if let Some(Value::Obj(fields)) = v.get("bench_min_ns") {
            for (k, b) in fields {
                bench_min_ns
                    .insert(k.clone(), b.as_f64().ok_or("manifest: bad bench_min_ns value")?);
            }
        }
        Ok(RunManifest {
            id: st("id")?,
            bench: st("bench")?,
            class: st("class")?,
            // Absent in manifests written before the compiled backend.
            backend: st("backend").unwrap_or_default(),
            // Absent in manifests written before the precision lattice;
            // empty means the classic double/single search.
            lattice: st("lattice").unwrap_or_default(),
            // Absent in manifests written before trace propagation;
            // empty means no client request is linked to the run.
            trace_id: st("trace_id").unwrap_or_default(),
            config_hash: st("config_hash")?,
            tol: v.get("tol").and_then(Value::as_f64).ok_or("manifest: missing \"tol\"")?,
            threads: n("threads")? as usize,
            git: st("git")?,
            created_unix: n("created_unix")?,
            wall_us: n("wall_us")?,
            summary,
            bench_min_ns,
        })
    }

    /// Write `manifest.json` into `run_dir`.
    pub fn save(&self, run_dir: impl AsRef<Path>) -> std::io::Result<()> {
        let mut text = self.to_json();
        text.push('\n');
        std::fs::write(run_dir.as_ref().join(MANIFEST_FILE), text)
    }

    /// Read `run_dir/manifest.json`, if present.
    pub fn load(run_dir: impl AsRef<Path>) -> Result<Option<RunManifest>, String> {
        let path = run_dir.as_ref().join(MANIFEST_FILE);
        match std::fs::read_to_string(&path) {
            Ok(text) => RunManifest::parse(&text).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }
}

/// One line of the registry's `index.jsonl`.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexEntry {
    /// Run id (matches the run's manifest).
    pub id: String,
    /// Absolute path of the run directory at record time.
    pub path: PathBuf,
    /// Benchmark name.
    pub bench: String,
    /// Unix seconds when the run started.
    pub created_unix: u64,
    /// Run wall time, microseconds.
    pub wall_us: u64,
    /// Whether the final configuration verified.
    pub final_pass: bool,
}

impl IndexEntry {
    fn to_json(&self) -> String {
        let mut s = String::with_capacity(160);
        s.push_str("{\"id\":");
        esc(&mut s, &self.id);
        s.push_str(",\"path\":");
        esc(&mut s, &self.path.display().to_string());
        s.push_str(",\"bench\":");
        esc(&mut s, &self.bench);
        let _ = write!(
            s,
            ",\"created_unix\":{},\"wall_us\":{},\"final_pass\":{}}}",
            self.created_unix, self.wall_us, self.final_pass
        );
        s
    }

    fn parse(v: &Value) -> Result<IndexEntry, String> {
        let st = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("index: missing \"{k}\""))
        };
        let n = |k: &str| -> Result<u64, String> {
            v.get(k).and_then(Value::as_u64).ok_or_else(|| format!("index: missing \"{k}\""))
        };
        Ok(IndexEntry {
            id: st("id")?,
            path: PathBuf::from(st("path")?),
            bench: st("bench")?,
            created_unix: n("created_unix")?,
            wall_us: n("wall_us")?,
            final_pass: v
                .get("final_pass")
                .and_then(Value::as_bool)
                .ok_or("index: missing \"final_pass\"")?,
        })
    }
}

/// A registry directory holding `index.jsonl`.
#[derive(Debug, Clone)]
pub struct Registry {
    dir: PathBuf,
}

/// Process-wide run counter, for id uniqueness within one process.
static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

/// Allocate a fresh run id: `{bench}-{unix}-{pid}-{n}`.
pub fn new_run_id(bench: &str, created_unix: u64) -> String {
    let n = RUN_SEQ.fetch_add(1, Ordering::Relaxed);
    format!("{bench}-{created_unix}-{}-{n}", std::process::id())
}

/// Unix seconds now (0 if the clock is before the epoch).
pub fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// FNV-1a (64-bit) over `text`, rendered as 16 hex digits. Used for the
/// manifest's `config_hash`.
pub fn fnv1a64(text: &str) -> String {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    format!("{h:016x}")
}

impl Registry {
    /// Open (creating if needed) a registry at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Registry> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Registry { dir })
    }

    /// The registry directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Resolve the registry directory: `explicit` flag, then the
    /// `CRAFT_REGISTRY` environment variable, then `$HOME/.craft/runs`.
    /// Returns `None` when nothing resolves (e.g. `HOME` unset).
    pub fn resolve(explicit: Option<&str>) -> Option<PathBuf> {
        if let Some(d) = explicit {
            return Some(PathBuf::from(d));
        }
        if let Ok(d) = std::env::var("CRAFT_REGISTRY") {
            if !d.is_empty() {
                return Some(PathBuf::from(d));
            }
        }
        std::env::var_os("HOME").map(|h| PathBuf::from(h).join(".craft").join("runs"))
    }

    /// Append one run to `index.jsonl`.
    pub fn record(&self, manifest: &RunManifest, run_dir: impl AsRef<Path>) -> std::io::Result<()> {
        use std::io::Write as _;
        let path = run_dir.as_ref();
        let entry = IndexEntry {
            id: manifest.id.clone(),
            path: std::fs::canonicalize(path).unwrap_or_else(|_| path.to_path_buf()),
            bench: manifest.bench.clone(),
            created_unix: manifest.created_unix,
            wall_us: manifest.wall_us,
            final_pass: manifest.summary.as_ref().is_some_and(|s| s.final_pass),
        };
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join("index.jsonl"))?;
        writeln!(f, "{}", entry.to_json())
    }

    /// All recorded runs in record order, tolerating a truncated final
    /// index line. Returns `(entries, warning)`.
    pub fn entries(&self) -> Result<(Vec<IndexEntry>, Option<String>), String> {
        let path = self.dir.join("index.jsonl");
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok((Vec::new(), None));
            }
            Err(e) => return Err(format!("{}: {e}", path.display())),
        };
        let (lines, warning) = json::parse_jsonl_tolerant(&text)?;
        let mut entries = Vec::with_capacity(lines.len());
        for (lineno, v) in &lines {
            entries.push(IndexEntry::parse(v).map_err(|e| format!("line {lineno}: {e}"))?);
        }
        Ok((entries, warning))
    }

    /// The most recently recorded run, optionally restricted to one
    /// bench.
    pub fn latest(&self, bench: Option<&str>) -> Result<Option<IndexEntry>, String> {
        let (entries, _) = self.entries()?;
        Ok(entries.into_iter().rev().find(|e| bench.is_none_or(|b| e.bench == b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(id: &str, bench: &str, pass: bool) -> RunManifest {
        RunManifest {
            id: id.into(),
            bench: bench.into(),
            class: "s".into(),
            backend: "compiled".into(),
            lattice: "s,h,b".into(),
            trace_id: "tr-1700000000-1-0".into(),
            config_hash: fnv1a64("double main()"),
            tol: 1e-6,
            threads: 4,
            git: "abc1234-dirty".into(),
            created_unix: 1_700_000_000,
            wall_us: 123_456,
            summary: Some(RunSummary {
                candidates: 20,
                tested: 55,
                static_pct: 40.0,
                dynamic_pct: 61.5,
                final_pass: pass,
                timeouts: 1,
                crashes: 0,
                retries: 2,
                quarantined: 0,
                pruned_by_shadow: 7,
            }),
            bench_min_ns: [("interp/ep.orig.fast".to_string(), 1234.5f64)].into(),
        }
    }

    #[test]
    fn manifest_round_trip_is_byte_exact() {
        let m = manifest("ep-1700000000-1-0", "ep", true);
        let text = m.to_json();
        let back = RunManifest::parse(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.to_json(), text);
        // No summary (crashed run) round-trips too.
        let m = RunManifest { summary: None, ..m };
        assert_eq!(RunManifest::parse(&m.to_json()).unwrap(), m);
    }

    #[test]
    fn legacy_manifest_without_backend_parses_with_empty_backend() {
        let m = manifest("ep-1700000000-1-0", "ep", true);
        let text = m.to_json();
        // Simulate a manifest written before the compiled backend existed.
        let legacy = text.replace(",\"backend\":\"compiled\"", "");
        assert!(!legacy.contains("backend"));
        let back = RunManifest::parse(&legacy).unwrap();
        assert_eq!(back.backend, "");
        assert_eq!(RunManifest { backend: String::new(), ..m }, back);
    }

    #[test]
    fn legacy_manifest_without_lattice_parses_as_classic() {
        let m = manifest("ep-1700000000-1-0", "ep", true);
        let text = m.to_json();
        // Simulate a manifest written before the precision lattice.
        let legacy = text.replace(",\"lattice\":\"s,h,b\"", "");
        assert!(!legacy.contains("lattice"));
        let back = RunManifest::parse(&legacy).unwrap();
        assert_eq!(back.lattice, "");
        assert_eq!(RunManifest { lattice: String::new(), ..m }, back);
    }

    #[test]
    fn legacy_manifest_without_trace_id_parses_with_empty_trace() {
        let m = manifest("ep-1700000000-1-0", "ep", true);
        let text = m.to_json();
        // Simulate a manifest written before trace propagation.
        let legacy = text.replace(",\"trace_id\":\"tr-1700000000-1-0\"", "");
        assert!(!legacy.contains("trace_id"));
        let back = RunManifest::parse(&legacy).unwrap();
        assert_eq!(back.trace_id, "");
        assert_eq!(RunManifest { trace_id: String::new(), ..m }, back);
    }

    #[test]
    fn save_load_and_index_round_trip() {
        let dir = std::env::temp_dir().join(format!("mptrace-reg-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let run_a = dir.join("runs").join("a");
        let run_b = dir.join("runs").join("b");
        std::fs::create_dir_all(&run_a).unwrap();
        std::fs::create_dir_all(&run_b).unwrap();

        let ma = manifest("ep-1-1-0", "ep", true);
        let mb = manifest("cg-2-1-1", "cg", false);
        ma.save(&run_a).unwrap();
        mb.save(&run_b).unwrap();
        assert_eq!(RunManifest::load(&run_a).unwrap().unwrap(), ma);
        assert_eq!(RunManifest::load(dir.join("missing")).unwrap(), None);

        let reg = Registry::open(dir.join("registry")).unwrap();
        reg.record(&ma, &run_a).unwrap();
        reg.record(&mb, &run_b).unwrap();
        let (entries, warn) = reg.entries().unwrap();
        assert!(warn.is_none());
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].id, "ep-1-1-0");
        assert!(entries[0].final_pass);
        assert!(!entries[1].final_pass);
        assert_eq!(reg.latest(None).unwrap().unwrap().id, "cg-2-1-1");
        assert_eq!(reg.latest(Some("ep")).unwrap().unwrap().id, "ep-1-1-0");
        assert_eq!(reg.latest(Some("nope")).unwrap(), None);

        // A torn final index line is tolerated with a warning.
        let idx = reg.dir().join("index.jsonl");
        let mut text = std::fs::read_to_string(&idx).unwrap();
        text.push_str("{\"id\":\"torn");
        std::fs::write(&idx, text).unwrap();
        let (entries, warn) = reg.entries().unwrap();
        assert_eq!(entries.len(), 2);
        assert!(warn.is_some());

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_ids_are_unique_and_hash_is_stable() {
        assert_ne!(new_run_id("ep", 5), new_run_id("ep", 5));
        assert_eq!(fnv1a64(""), "cbf29ce484222325");
        assert_ne!(fnv1a64("a"), fnv1a64("b"));
    }
}
