//! Live telemetry streaming: incremental snapshot deltas plus search
//! progress, one JSON object per line.
//!
//! A [`StreamSink`] owns a [`Tracer`] handle and a writer (normally
//! `<run-dir>/live.jsonl`). The search loop calls [`StreamSink::tick`]
//! at convenient points; the sink is both **interval-gated** (a cheap
//! atomic check skips ticks arriving faster than
//! [`StreamOptions::min_interval`]) and **delta-gated** (nothing is
//! written when neither the trace nor the progress changed), so wiring
//! it into a hot loop costs a couple of atomic loads per call in the
//! common case. Phase transitions and run completion use
//! [`StreamSink::force`] so the file always ends on fresh state.
//!
//! The wire format is a `meta` header, then interleaved `delta` records
//! ([`crate::delta::TraceDelta`]) and `progress` records
//! ([`ProgressRecord`]). [`LiveLog::parse_tolerant`] reads it back,
//! dropping a torn final line from a crashed run, and
//! [`LiveLog::final_snapshot`] folds the deltas into the same
//! [`TraceSnapshot`] a post-mortem `trace.jsonl` would hold.

use crate::delta::TraceDelta;
use crate::json::{self, esc, Value};
use crate::snapshot::TraceSnapshot;
use crate::Tracer;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as IoWrite;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Header line identifying a live stream artifact.
pub const LIVE_META: &str = "{\"kind\":\"meta\",\"format\":\"mptrace-live\",\"version\":1}";

/// Tuning for a [`StreamSink`].
#[derive(Debug, Clone)]
pub struct StreamOptions {
    /// Minimum wall time between emissions via [`StreamSink::tick`]
    /// (default 200ms). [`StreamSink::force`] ignores this.
    pub min_interval: Duration,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions { min_interval: Duration::from_millis(200) }
    }
}

/// Instantaneous search progress, supplied by the caller on each tick.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Progress {
    /// Current search phase (`"bfs"`, `"union"`, `"second-phase"`,
    /// `"done"`, ...).
    pub phase: String,
    /// Configurations waiting in the work queue.
    pub queue_depth: u64,
    /// Configurations currently being evaluated.
    pub in_flight: u64,
    /// Evaluations finished so far.
    pub done: u64,
    /// Best current estimate of total evaluations (done + queued +
    /// in-flight); grows as the search expands failing configs.
    pub total_estimate: u64,
}

/// One `progress` line as read back from a live stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgressRecord {
    /// Emission ordinal shared with delta records.
    pub seq: u64,
    /// Microseconds since the stream opened.
    pub t_us: u64,
    /// The caller-supplied progress.
    pub progress: Progress,
    /// Estimated microseconds remaining (`None` until `done > 0`).
    pub eta_us: Option<u64>,
    /// Executor verdict counts so far, by verdict name.
    pub verdicts: BTreeMap<String, u64>,
}

impl ProgressRecord {
    /// Serialize as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(160);
        let _ = write!(s, "{{\"kind\":\"progress\",\"seq\":{},\"t_us\":{}", self.seq, self.t_us);
        s.push_str(",\"phase\":");
        esc(&mut s, &self.progress.phase);
        let _ = write!(
            s,
            ",\"queue_depth\":{},\"in_flight\":{},\"done\":{},\"total\":{}",
            self.progress.queue_depth,
            self.progress.in_flight,
            self.progress.done,
            self.progress.total_estimate
        );
        match self.eta_us {
            Some(e) => {
                let _ = write!(s, ",\"eta_us\":{e}");
            }
            None => s.push_str(",\"eta_us\":null"),
        }
        s.push_str(",\"verdicts\":{");
        for (i, (k, v)) in self.verdicts.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            esc(&mut s, k);
            let _ = write!(s, ":{v}");
        }
        s.push_str("}}");
        s
    }

    /// Parse a value produced by [`ProgressRecord::to_json`].
    pub fn parse(v: &Value) -> Result<ProgressRecord, String> {
        if v.get("kind").and_then(Value::as_str) != Some("progress") {
            return Err("not a progress record".into());
        }
        let n = |k: &str| -> Result<u64, String> {
            v.get(k).and_then(Value::as_u64).ok_or_else(|| format!("progress: missing \"{k}\""))
        };
        let mut verdicts = BTreeMap::new();
        if let Some(Value::Obj(fields)) = v.get("verdicts") {
            for (k, c) in fields {
                verdicts.insert(k.clone(), c.as_u64().ok_or("progress: verdict count")?);
            }
        }
        Ok(ProgressRecord {
            seq: n("seq")?,
            t_us: n("t_us")?,
            progress: Progress {
                phase: v
                    .get("phase")
                    .and_then(Value::as_str)
                    .ok_or("progress: missing \"phase\"")?
                    .to_string(),
                queue_depth: n("queue_depth")?,
                in_flight: n("in_flight")?,
                done: n("done")?,
                total_estimate: n("total")?,
            },
            eta_us: match v.get("eta_us") {
                Some(Value::Null) | None => None,
                Some(e) => Some(e.as_u64().ok_or("progress: eta_us")?),
            },
            verdicts,
        })
    }
}

struct StreamState {
    out: Box<dyn IoWrite + Send>,
    prev: TraceSnapshot,
    last_progress: Option<ProgressRecord>,
    seq: u64,
}

/// Periodic emitter of trace deltas + progress to a JSONL stream.
pub struct StreamSink {
    tracer: Tracer,
    opts: StreamOptions,
    state: Mutex<StreamState>,
    /// `t_us` of the last emission — the fast interval gate.
    last_emit_us: AtomicU64,
    /// Shared buffer when constructed via [`StreamSink::in_memory`].
    mem: Option<Arc<Mutex<Vec<u8>>>>,
}

/// `Vec<u8>` writer that appends into a shared buffer.
struct MemWriter(Arc<Mutex<Vec<u8>>>);

impl IoWrite for MemWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl StreamSink {
    /// Stream to `path` (truncating), writing the meta header eagerly so
    /// even an immediately-crashed run leaves an identifiable artifact.
    pub fn to_file(
        path: impl AsRef<Path>,
        tracer: &Tracer,
        opts: StreamOptions,
    ) -> std::io::Result<StreamSink> {
        let file = std::fs::File::create(path)?;
        Ok(StreamSink::to_writer(Box::new(std::io::BufWriter::new(file)), tracer, opts))
    }

    /// Stream to an arbitrary writer. The meta header is written
    /// immediately (write errors are swallowed, as everywhere else in
    /// the sink: telemetry must never take down the search).
    pub fn to_writer(
        mut out: Box<dyn IoWrite + Send>,
        tracer: &Tracer,
        opts: StreamOptions,
    ) -> StreamSink {
        let _ = writeln!(out, "{LIVE_META}");
        let _ = out.flush();
        StreamSink {
            tracer: tracer.clone(),
            opts,
            state: Mutex::new(StreamState {
                out,
                prev: TraceSnapshot::default(),
                last_progress: None,
                seq: 0,
            }),
            last_emit_us: AtomicU64::new(0),
            mem: None,
        }
    }

    /// Stream into memory; read back with [`StreamSink::contents`].
    /// Ticks are never interval-suppressed, which makes tests
    /// deterministic.
    pub fn in_memory(tracer: &Tracer) -> StreamSink {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let mut sink = StreamSink::to_writer(
            Box::new(MemWriter(Arc::clone(&buf))),
            tracer,
            StreamOptions { min_interval: Duration::ZERO },
        );
        sink.mem = Some(buf);
        sink
    }

    /// The bytes written so far (in-memory sinks only).
    pub fn contents(&self) -> String {
        match &self.mem {
            Some(buf) => {
                String::from_utf8_lossy(&buf.lock().unwrap_or_else(|e| e.into_inner())).into_owned()
            }
            None => String::new(),
        }
    }

    /// Rate-limited emission: returns immediately (two atomic loads)
    /// unless [`StreamOptions::min_interval`] has elapsed since the last
    /// emission.
    pub fn tick(&self, p: &Progress) {
        let now = self.tracer.now_us();
        let last = self.last_emit_us.load(Ordering::Relaxed);
        let min_us = self.opts.min_interval.as_micros() as u64;
        if now.saturating_sub(last) < min_us && last != 0 {
            return;
        }
        self.force(p);
    }

    /// Unconditional emission (phase transitions, run completion).
    pub fn force(&self, p: &Progress) {
        let cur = self.tracer.snapshot();
        let now = self.tracer.now_us();
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let seq = st.seq + 1;
        let delta = TraceDelta::between(&st.prev, &cur, seq, now);
        let verdicts: BTreeMap<String, u64> = cur
            .counters
            .iter()
            .filter_map(|(k, &v)| k.strip_prefix("exec.verdict.").map(|name| (name.to_string(), v)))
            .collect();
        let eta_us = (p.done > 0 && p.total_estimate > p.done)
            .then(|| now * (p.total_estimate - p.done) / p.done);
        let rec = ProgressRecord { seq, t_us: now, progress: p.clone(), eta_us, verdicts };
        let progress_changed = match &st.last_progress {
            Some(prev) => prev.progress != rec.progress || prev.verdicts != rec.verdicts,
            None => true,
        };
        if delta.is_empty() && !progress_changed {
            return; // delta gate: nothing new anywhere
        }
        st.seq = seq;
        if !delta.is_empty() {
            let line = delta.to_json();
            let _ = writeln!(st.out, "{line}");
        }
        if progress_changed {
            let line = rec.to_json();
            let _ = writeln!(st.out, "{line}");
            st.last_progress = Some(rec);
        }
        let _ = st.out.flush();
        st.prev = cur;
        self.last_emit_us.store(now, Ordering::Relaxed);
    }
}

/// A parsed live stream.
#[derive(Debug, Clone, Default)]
pub struct LiveLog {
    /// Trace deltas in emission order.
    pub deltas: Vec<TraceDelta>,
    /// Progress records in emission order.
    pub progress: Vec<ProgressRecord>,
    /// Warning from a dropped truncated final line, if any.
    pub warning: Option<String>,
}

impl LiveLog {
    /// Parse a live stream, tolerating a truncated final line (see
    /// [`json::parse_jsonl_tolerant`]).
    pub fn parse_tolerant(text: &str) -> Result<LiveLog, String> {
        let (lines, warning) = json::parse_jsonl_tolerant(text)?;
        let mut log = LiveLog { warning, ..Default::default() };
        let mut saw_meta = false;
        for (i, (lineno, v)) in lines.iter().enumerate() {
            let kind = v
                .get("kind")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("line {lineno}: missing \"kind\""))?;
            let last = i + 1 == lines.len();
            let res: Result<(), String> = match kind {
                "meta" => {
                    if v.get("format").and_then(Value::as_str) != Some("mptrace-live") {
                        return Err("not an mptrace live stream".into());
                    }
                    saw_meta = true;
                    Ok(())
                }
                "delta" => TraceDelta::parse(v).map(|d| log.deltas.push(d)),
                "progress" => ProgressRecord::parse(v).map(|p| log.progress.push(p)),
                other => Err(format!("unknown kind {other:?}")),
            };
            match res {
                Ok(()) => {}
                // A final line that parses as JSON but fails
                // interpretation is the same torn-write case.
                Err(e) if last && log.warning.is_none() => {
                    log.warning =
                        Some(format!("line {lineno}: dropped invalid final record ({e})"));
                }
                Err(e) => return Err(format!("line {lineno}: {e}")),
            }
        }
        if !saw_meta {
            return Err("missing mptrace-live meta header line".into());
        }
        Ok(log)
    }

    /// Read and parse a live stream from disk.
    pub fn from_file(path: impl AsRef<Path>) -> Result<LiveLog, String> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| format!("{}: {e}", path.as_ref().display()))?;
        LiveLog::parse_tolerant(&text)
    }

    /// Fold every delta into a full snapshot — byte-identical (via
    /// [`TraceSnapshot::to_jsonl`]) to the snapshot the tracer held at
    /// the last emission.
    pub fn final_snapshot(&self) -> TraceSnapshot {
        let mut snap = TraceSnapshot::default();
        for d in &self.deltas {
            d.apply(&mut snap);
        }
        snap
    }

    /// The most recent progress record, if any.
    pub fn latest_progress(&self) -> Option<&ProgressRecord> {
        self.progress.last()
    }
}

/// Incremental reader for a *growing* live stream.
///
/// [`LiveLog::from_file`] re-reads and re-parses the whole file on
/// every call — fine post-mortem, quadratic for a follower polling a
/// long run, and ruinous for a daemon serving many concurrent
/// followers. A `LiveTail` remembers the byte offset of the last fully
/// consumed line and each [`LiveTail::poll`] reads only the appended
/// suffix, folding complete new lines into its accumulated [`LiveLog`].
///
/// Torn-line tolerance falls out of the framing: a partially written
/// final line has no trailing newline yet, so it stays buffered in the
/// carry until the writer's flush completes it — it is simply "not
/// there yet", never an error. A newline-*terminated* line that fails
/// to parse is mid-file corruption and errors, exactly like the
/// post-mortem reader. Truncation or recreation of the file (a re-run
/// into the same directory) is detected by the file shrinking below the
/// consumed offset, and resets the tail to re-read from the start.
#[derive(Debug)]
pub struct LiveTail {
    path: std::path::PathBuf,
    /// Bytes of complete, consumed lines.
    offset: u64,
    /// Trailing partial line awaiting its newline.
    carry: Vec<u8>,
    log: LiveLog,
    saw_meta: bool,
    /// Raw complete lines consumed since the last [`LiveTail::take_raw`]
    /// (newline-terminated), for followers that forward bytes verbatim.
    pending_raw: String,
}

impl LiveTail {
    /// Start tailing `path`. The file need not exist yet; polls before
    /// it appears simply report no progress.
    pub fn new(path: impl AsRef<Path>) -> LiveTail {
        LiveTail {
            path: path.as_ref().to_path_buf(),
            offset: 0,
            carry: Vec::new(),
            log: LiveLog::default(),
            saw_meta: false,
            pending_raw: String::new(),
        }
    }

    /// Everything folded so far.
    pub fn log(&self) -> &LiveLog {
        &self.log
    }

    /// Byte offset of consumed complete lines (observability/tests).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Drain the raw text of lines consumed since the last call.
    pub fn take_raw(&mut self) -> String {
        std::mem::take(&mut self.pending_raw)
    }

    /// Read any appended bytes and fold complete new lines. Returns the
    /// number of new records consumed (0 when nothing changed). The
    /// consumed offset only advances past lines that parsed, so a
    /// mid-file corruption error is sticky rather than silently skipped.
    pub fn poll(&mut self) -> Result<usize, String> {
        use std::io::{Read, Seek, SeekFrom};
        let mut f = match std::fs::File::open(&self.path) {
            Ok(f) => f,
            // Not created yet (or briefly recreated): nothing to read.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(format!("{}: {e}", self.path.display())),
        };
        let len = f.metadata().map_err(|e| format!("{}: {e}", self.path.display()))?.len();
        let consumed = self.offset + self.carry.len() as u64;
        if len < consumed {
            // Truncated or recreated: start over.
            *self = LiveTail::new(&self.path);
            return self.poll();
        }
        if len > consumed {
            f.seek(SeekFrom::Start(consumed))
                .map_err(|e| format!("{}: {e}", self.path.display()))?;
            let mut buf = Vec::with_capacity((len - consumed) as usize);
            f.read_to_end(&mut buf).map_err(|e| format!("{}: {e}", self.path.display()))?;
            self.carry.extend_from_slice(&buf);
        }
        // Always re-scan the carry: an errored poll leaves its complete
        // bad line buffered, so the error re-reports until the file is
        // truncated/recreated.

        let mut consumed_records = 0usize;
        while let Some(nl) = self.carry.iter().position(|&b| b == b'\n') {
            let text = String::from_utf8_lossy(&self.carry[..nl]).into_owned();
            if !text.trim().is_empty() {
                // Parse before consuming: a corrupt line is reported on
                // this poll and every later one, never skipped over.
                self.fold_line(&text)?;
                self.pending_raw.push_str(&text);
                self.pending_raw.push('\n');
                consumed_records += 1;
            }
            self.carry.drain(..=nl);
            self.offset += nl as u64 + 1;
        }
        Ok(consumed_records)
    }

    fn fold_line(&mut self, line: &str) -> Result<(), String> {
        let v = json::parse(line).map_err(|e| format!("{}: {e}", self.path.display()))?;
        let kind = v
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{}: record missing \"kind\"", self.path.display()))?;
        match kind {
            "meta" => {
                if v.get("format").and_then(Value::as_str) != Some("mptrace-live") {
                    return Err(format!("{}: not an mptrace live stream", self.path.display()));
                }
                self.saw_meta = true;
                Ok(())
            }
            _ if !self.saw_meta => {
                Err(format!("{}: missing mptrace-live meta header line", self.path.display()))
            }
            "delta" => TraceDelta::parse(&v)
                .map(|d| self.log.deltas.push(d))
                .map_err(|e| format!("{}: {e}", self.path.display())),
            "progress" => ProgressRecord::parse(&v)
                .map(|p| self.log.progress.push(p))
                .map_err(|e| format!("{}: {e}", self.path.display())),
            other => Err(format!("{}: unknown kind {other:?}", self.path.display())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn progress(phase: &str, depth: u64, done: u64, total: u64) -> Progress {
        Progress {
            phase: phase.into(),
            queue_depth: depth,
            in_flight: 1,
            done,
            total_estimate: total,
        }
    }

    #[test]
    fn stream_accumulates_to_tracer_snapshot() {
        let t = Tracer::new();
        let sink = StreamSink::in_memory(&t);
        t.incr("exec.verdict.pass", 1);
        {
            let _sp = t.span("phase:bfs");
            t.observe("eval.run_us", 40);
        }
        sink.force(&progress("bfs", 5, 1, 10));
        t.incr("exec.verdict.fail", 2);
        t.gauge("search.queue_depth", 3.0);
        sink.force(&progress("union", 2, 7, 10));
        let expect = t.snapshot();
        sink.force(&progress("done", 0, 10, 10));

        let log = LiveLog::parse_tolerant(&sink.contents()).unwrap();
        assert!(log.warning.is_none());
        assert!(log.deltas.len() >= 2);
        assert_eq!(log.progress.len(), 3);
        assert_eq!(log.final_snapshot().to_jsonl(), t.snapshot().to_jsonl());
        assert_eq!(expect.counters["exec.verdict.fail"], 2);
        let last = log.latest_progress().unwrap();
        assert_eq!(last.progress.phase, "done");
        assert_eq!(last.verdicts["pass"], 1);
        assert_eq!(last.verdicts["fail"], 2);
    }

    #[test]
    fn delta_gate_suppresses_no_op_emissions() {
        let t = Tracer::new();
        let sink = StreamSink::in_memory(&t);
        let p = progress("bfs", 4, 2, 8);
        sink.force(&p);
        let before = sink.contents();
        sink.force(&p); // identical trace + progress: no new bytes
        assert_eq!(sink.contents(), before);
        sink.force(&progress("bfs", 3, 3, 8)); // progress moved
        assert!(sink.contents().len() > before.len());
    }

    #[test]
    fn progress_record_round_trips() {
        let rec = ProgressRecord {
            seq: 3,
            t_us: 12345,
            progress: progress("second-phase", 9, 41, 60),
            eta_us: Some(5678),
            verdicts: [("pass".to_string(), 30u64), ("timeout".to_string(), 2)].into(),
        };
        let line = rec.to_json();
        let back = ProgressRecord::parse(&json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, rec);
        assert_eq!(back.to_json(), line);
        // null ETA round-trips too
        let rec = ProgressRecord { eta_us: None, ..rec };
        let back = ProgressRecord::parse(&json::parse(&rec.to_json()).unwrap()).unwrap();
        assert_eq!(back.eta_us, None);
    }

    #[test]
    fn truncated_final_line_is_dropped_with_warning() {
        let t = Tracer::new();
        let sink = StreamSink::in_memory(&t);
        t.incr("a", 1);
        sink.force(&progress("bfs", 1, 1, 2));
        t.incr("a", 1);
        sink.force(&progress("bfs", 0, 2, 2));
        let full = sink.contents();
        // Drop the trailing progress line, then tear the second delta
        // record mid-JSON — a crash halfway through a flush.
        let trimmed = full.trim_end_matches('\n');
        let without_progress = &trimmed[..trimmed.rfind('\n').unwrap()];
        let cut = &without_progress[..without_progress.len() - 5];
        let log = LiveLog::parse_tolerant(cut).unwrap();
        assert!(log.warning.as_deref().unwrap().contains("dropped"), "{:?}", log.warning);
        // The surviving prefix still folds into a valid snapshot.
        assert_eq!(log.final_snapshot().counters.get("a"), Some(&1));
    }

    #[test]
    fn live_tail_consumes_only_the_appended_suffix() {
        let dir = std::env::temp_dir().join(format!("mptrace-tail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("live_tail_suffix.jsonl");
        let _ = std::fs::remove_file(&path);

        let mut tail = LiveTail::new(&path);
        assert_eq!(tail.poll().unwrap(), 0, "absent file reads as empty");

        let t = Tracer::new();
        t.incr("a", 1);
        let full = {
            let sink = StreamSink::in_memory(&t);
            sink.force(&progress("bfs", 2, 1, 4));
            t.incr("a", 1);
            sink.force(&progress("done", 0, 4, 4));
            sink.contents()
        };
        let lines: Vec<&str> = full.lines().collect();
        assert!(lines.len() >= 4, "{full}");

        // Write the first half, plus a torn fragment of the next line.
        let head = format!("{}\n{}\n{}", lines[0], lines[1], &lines[2][..lines[2].len() / 2]);
        std::fs::write(&path, &head).unwrap();
        assert_eq!(tail.poll().unwrap(), 2);
        let after_head = tail.offset();
        assert_eq!(after_head, (lines[0].len() + lines[1].len() + 2) as u64);
        assert_eq!(tail.poll().unwrap(), 0, "torn line stays buffered");

        // Complete the file; only the suffix is parsed.
        std::fs::write(&path, &full).unwrap();
        let more = tail.poll().unwrap();
        assert_eq!(more, lines.len() - 2);
        assert!(tail.offset() > after_head);

        // The folded tail equals the whole-file reader's view.
        let whole = LiveLog::parse_tolerant(&full).unwrap();
        assert_eq!(tail.log().final_snapshot().to_jsonl(), whole.final_snapshot().to_jsonl());
        assert_eq!(tail.log().progress, whole.progress);
        // Raw drain returns every complete line exactly once.
        assert_eq!(tail.take_raw(), full);
        assert_eq!(tail.take_raw(), "");
    }

    #[test]
    fn live_tail_resets_on_truncation() {
        let dir = std::env::temp_dir().join(format!("mptrace-tail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("live_tail_trunc.jsonl");

        let t = Tracer::new();
        // Plenty of counters, so the first stream is strictly longer
        // than the replacement written below.
        for i in 0..32 {
            t.incr(&format!("x.padding.counter.{i}"), 5);
        }
        t.incr("x", 5);
        let first = {
            let sink = StreamSink::in_memory(&t);
            sink.force(&progress("bfs", 1, 1, 2));
            sink.contents()
        };
        std::fs::write(&path, &first).unwrap();
        let mut tail = LiveTail::new(&path);
        assert!(tail.poll().unwrap() > 0);

        // A fresh, shorter stream replaces the file (re-run).
        let t2 = Tracer::new();
        t2.incr("y", 1);
        let second = {
            let sink = StreamSink::in_memory(&t2);
            sink.force(&progress("done", 0, 1, 1));
            sink.contents()
        };
        assert!(second.len() < first.len());
        std::fs::write(&path, &second).unwrap();
        assert!(tail.poll().unwrap() > 0);
        let snap = tail.log().final_snapshot();
        assert_eq!(snap.counters.get("y"), Some(&1));
        assert_eq!(snap.counters.get("x"), None, "old stream state must be discarded");
    }

    #[test]
    fn live_tail_errors_on_midfile_corruption() {
        let dir = std::env::temp_dir().join(format!("mptrace-tail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("live_tail_corrupt.jsonl");
        std::fs::write(&path, format!("{LIVE_META}\nnot json at all\n")).unwrap();
        let mut tail = LiveTail::new(&path);
        assert!(tail.poll().is_err());
        // The error is sticky: the bad line is never skipped.
        assert!(tail.poll().is_err());
    }

    #[test]
    fn rejects_foreign_streams() {
        assert!(LiveLog::parse_tolerant(
            "{\"kind\":\"meta\",\"format\":\"mptrace\",\"version\":1}"
        )
        .is_err());
        assert!(LiveLog::parse_tolerant("{\"kind\":\"delta\",\"seq\":1,\"t_us\":2}").is_err());
    }
}
