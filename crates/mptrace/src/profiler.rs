//! Per-instruction interpreter profiling via the const-gated
//! [`StepObserver`] hook.
//!
//! [`InsnProfiler`] attributes model cycles and dispatch counts to
//! [`InsnId`]s while a program runs on the pre-decoded fast path
//! ([`fpvm::Vm::run_image_profiled`]). Because the hook is gated on an
//! associated `const`, the unprofiled loop monomorphizes without any
//! trace of it — zero cost when disabled, enforced bit-identical by
//! `tests/trace_differential.rs`.

use fpvm::exec::StepObserver;
use fpvm::InsnId;

/// One instruction's accumulators, kept together so the per-dispatch
/// hook touches a single slot (one bounds check, one cache line).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Slot {
    /// Model cycles attributed to the instruction.
    pub cycles: u64,
    /// Dispatch count of the instruction.
    pub hits: u64,
}

/// Dense per-instruction cycle/hit accumulators, indexed by `InsnId`.
///
/// The slot vector carries one extra entry past the id bound: a
/// *discard bucket*. The per-dispatch hook clamps every id into range
/// and accumulates unconditionally — terminators and synthetic ops
/// (sentinel id `u32::MAX`) land in the discard bucket instead of
/// taking a data-dependent branch, which would mispredict on the
/// op/terminator interleaving of real programs. Accessors never expose
/// the discard bucket.
#[derive(Debug, Clone, Default)]
pub struct InsnProfiler {
    slots: Vec<Slot>,
}

impl InsnProfiler {
    /// A profiler sized for a program with `insn_id_bound() == bound`.
    pub fn new(bound: usize) -> InsnProfiler {
        InsnProfiler { slots: vec![Slot::default(); bound + 1] }
    }

    /// Ids strictly below this are attributed; the rest are discarded.
    fn bound(&self) -> usize {
        self.slots.len().saturating_sub(1)
    }

    /// Reset all accumulators to zero, keeping capacity.
    pub fn clear(&mut self) {
        self.slots.fill(Slot::default());
    }

    /// Cycles attributed to instruction `id` (0 when out of range).
    pub fn cycles(&self, id: u32) -> u64 {
        if (id as usize) < self.bound() {
            self.slots[id as usize].cycles
        } else {
            0
        }
    }

    /// Dispatch count of instruction `id` (0 when out of range).
    pub fn hits(&self, id: u32) -> u64 {
        if (id as usize) < self.bound() {
            self.slots[id as usize].hits
        } else {
            0
        }
    }

    /// Iterate `(id, slot)` over every instruction with any attribution.
    pub fn iter(&self) -> impl Iterator<Item = (u32, Slot)> + '_ {
        self.slots[..self.bound()]
            .iter()
            .enumerate()
            .filter(|(_, s)| s.cycles != 0 || s.hits != 0)
            .map(|(i, &s)| (i as u32, s))
    }

    /// Total cycles attributed across all instructions.
    pub fn total_cycles(&self) -> u64 {
        self.slots[..self.bound()].iter().map(|s| s.cycles).sum()
    }

    /// Total dispatches attributed across all instructions.
    pub fn total_hits(&self) -> u64 {
        self.slots[..self.bound()].iter().map(|s| s.hits).sum()
    }

    /// Fold this profile into another profiler under an id mapping:
    /// entry `i` is added at `map(i)`, growing the destination as
    /// needed. Used to attribute time spent in rewritten snippet
    /// instructions back to the original instruction they replaced.
    pub fn fold_into(&self, dest: &mut InsnProfiler, mut map: impl FnMut(u32) -> u32) {
        for (i, s) in self.iter() {
            let j = map(i) as usize;
            if j >= dest.bound() {
                dest.slots.resize(j + 2, Slot::default());
            }
            dest.slots[j].cycles += s.cycles;
            dest.slots[j].hits += s.hits;
        }
    }
}

impl StepObserver for InsnProfiler {
    const ENABLED: bool = true;

    #[inline(always)]
    fn step(&mut self, insn: InsnId, cost: u64) {
        // Runs once per dispatched instruction: clamp into the discard
        // bucket and accumulate unconditionally — no data-dependent
        // branch, and the bounds check is elided by the clamp.
        if self.slots.is_empty() {
            return; // only a default()-built fold destination
        }
        let i = (insn.0 as usize).min(self.slots.len() - 1);
        let s = &mut self.slots[i];
        s.cycles += cost;
        s.hits += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_accumulates_and_ignores_sentinel() {
        let mut p = InsnProfiler::new(3);
        p.step(InsnId(1), 4);
        p.step(InsnId(1), 4);
        p.step(InsnId(2), 1);
        p.step(InsnId(u32::MAX), 9); // sentinel: out of bounds, ignored
        assert_eq!(p.cycles(1), 8);
        assert_eq!(p.hits(1), 2);
        assert_eq!(p.cycles(2), 1);
        assert_eq!(p.total_cycles(), 9);
        assert_eq!(p.total_hits(), 3);
        assert_eq!(p.iter().count(), 2);
    }

    #[test]
    fn fold_into_applies_origin_mapping_and_grows() {
        let mut p = InsnProfiler::new(4);
        p.step(InsnId(0), 2);
        p.step(InsnId(3), 5);
        let mut dest = InsnProfiler::default();
        // Map snippet insn 3 back to origin 1, identity elsewhere.
        p.fold_into(&mut dest, |i| if i == 3 { 1 } else { i });
        assert_eq!(dest.cycles(0), 2);
        assert_eq!(dest.cycles(1), 5);
        assert_eq!(dest.hits(0), 1);
        assert_eq!(dest.hits(1), 1);
    }
}
