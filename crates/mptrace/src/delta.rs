//! Incremental [`TraceSnapshot`] deltas for live streaming.
//!
//! A [`TraceDelta`] is the difference between two snapshots of the same
//! [`crate::Tracer`], exploiting the tracer's monotonicity: spans only
//! append, counters/histograms/hot-spot totals only grow, and gauges
//! carry their full `last/min/max/sets` state. Applying every delta of a
//! run, in order, onto an empty snapshot reproduces the final snapshot
//! **exactly** — field-exact, and therefore byte-exact through
//! [`TraceSnapshot::to_jsonl`]. That invariant is what lets a `live.jsonl`
//! stream be replayed into the same artifact a post-mortem `trace.jsonl`
//! would have held.
//!
//! A delta serializes to a single JSON line ([`TraceDelta::to_json`])
//! whose round-trip through [`TraceDelta::parse`] is byte-exact; empty
//! sections are omitted on the wire and parse back as empty.

use crate::json::{self, esc, Value};
use crate::snapshot::{GaugeStat, HistStat, HotInsn, SpanRecord, TraceSnapshot};
use std::collections::{BTreeMap, HashSet};
use std::fmt::Write as _;

/// The difference between two snapshots of one tracer (`prev` → `cur`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceDelta {
    /// Emission ordinal within the stream (1-based).
    pub seq: u64,
    /// Microseconds since the stream opened, stamped at emission.
    pub t_us: u64,
    /// Spans completed since `prev` (ids absent from `prev`).
    pub spans: Vec<SpanRecord>,
    /// Counter *increments* by name (always > 0).
    pub counters: BTreeMap<String, u64>,
    /// Full gauge state for gauges that changed (gauges are not
    /// monotonic, so the delta carries replacement values).
    pub gauges: BTreeMap<String, GaugeStat>,
    /// Histogram increments: count/sum deltas plus sparse per-bucket
    /// count deltas.
    pub hists: BTreeMap<String, HistStat>,
    /// Hot-instruction increments; `label` is the current label when it
    /// is newly set (empty = unchanged).
    pub hot: Vec<HotInsn>,
}

impl TraceDelta {
    /// Compute the delta taking `prev` to `cur`. Both must come from the
    /// same tracer (`cur` recorded no earlier than `prev`).
    pub fn between(prev: &TraceSnapshot, cur: &TraceSnapshot, seq: u64, t_us: u64) -> TraceDelta {
        let seen: HashSet<u64> = prev.spans.iter().map(|s| s.id).collect();
        let spans = cur.spans.iter().filter(|s| !seen.contains(&s.id)).cloned().collect();

        let mut counters = BTreeMap::new();
        for (k, &v) in &cur.counters {
            let d = v - prev.counters.get(k).copied().unwrap_or(0);
            if d > 0 {
                counters.insert(k.clone(), d);
            }
        }

        let mut gauges = BTreeMap::new();
        for (k, g) in &cur.gauges {
            if prev.gauges.get(k) != Some(g) {
                gauges.insert(k.clone(), g.clone());
            }
        }

        let mut hists = BTreeMap::new();
        for (k, h) in &cur.hists {
            let empty = HistStat { count: 0, sum: 0, buckets: Vec::new() };
            let p = prev.hists.get(k).unwrap_or(&empty);
            let prev_buckets: BTreeMap<u32, u64> = p.buckets.iter().copied().collect();
            let buckets: Vec<(u32, u64)> = h
                .buckets
                .iter()
                .filter_map(|&(b, c)| {
                    let d = c - prev_buckets.get(&b).copied().unwrap_or(0);
                    (d > 0).then_some((b, d))
                })
                .collect();
            if h.count > p.count || h.sum > p.sum || !buckets.is_empty() {
                hists.insert(
                    k.clone(),
                    HistStat { count: h.count - p.count, sum: h.sum - p.sum, buckets },
                );
            }
        }

        let prev_hot: BTreeMap<u32, &HotInsn> = prev.hot.iter().map(|h| (h.insn, h)).collect();
        let hot = cur
            .hot
            .iter()
            .filter_map(|h| {
                let (pc, ph, pl) = match prev_hot.get(&h.insn) {
                    Some(p) => (p.cycles, p.hits, p.label.as_str()),
                    None => (0, 0, ""),
                };
                let label = if h.label != pl { h.label.clone() } else { String::new() };
                (h.cycles > pc || h.hits > ph || !label.is_empty()).then(|| HotInsn {
                    insn: h.insn,
                    cycles: h.cycles - pc,
                    hits: h.hits - ph,
                    label,
                })
            })
            .collect();

        TraceDelta { seq, t_us, spans, counters, gauges, hists, hot }
    }

    /// True when the delta carries no change at all (progress-only tick).
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.hists.is_empty()
            && self.hot.is_empty()
    }

    /// Merge this delta into `snap` (which must be the snapshot the
    /// delta was computed against, or the accumulation of all prior
    /// deltas in the stream).
    pub fn apply(&self, snap: &mut TraceSnapshot) {
        snap.spans.extend(self.spans.iter().cloned());
        snap.spans.sort_by_key(|s| (s.start_us, s.id));
        for (k, d) in &self.counters {
            *snap.counters.entry(k.clone()).or_insert(0) += d;
        }
        for (k, g) in &self.gauges {
            snap.gauges.insert(k.clone(), g.clone());
        }
        for (k, d) in &self.hists {
            let h = snap.hists.entry(k.clone()).or_insert(HistStat {
                count: 0,
                sum: 0,
                buckets: Vec::new(),
            });
            h.count += d.count;
            h.sum += d.sum;
            let mut merged: BTreeMap<u32, u64> = h.buckets.iter().copied().collect();
            for &(b, c) in &d.buckets {
                *merged.entry(b).or_insert(0) += c;
            }
            h.buckets = merged.into_iter().collect();
        }
        for d in &self.hot {
            match snap.hot.iter_mut().find(|h| h.insn == d.insn) {
                Some(h) => {
                    h.cycles += d.cycles;
                    h.hits += d.hits;
                    if !d.label.is_empty() {
                        h.label = d.label.clone();
                    }
                }
                None => snap.hot.push(d.clone()),
            }
        }
        snap.hot.sort_by_key(|h| h.insn);
    }

    /// Serialize as one JSON line (no trailing newline). Empty sections
    /// are omitted; the round-trip through [`TraceDelta::parse`] is
    /// byte-exact.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        let _ = write!(s, "{{\"kind\":\"delta\",\"seq\":{},\"t_us\":{}", self.seq, self.t_us);
        if !self.spans.is_empty() {
            s.push_str(",\"spans\":[");
            for (i, sp) in self.spans.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "[{},", sp.id);
                match sp.parent {
                    Some(p) => {
                        let _ = write!(s, "{p}");
                    }
                    None => s.push_str("null"),
                }
                s.push(',');
                esc(&mut s, &sp.name);
                let _ = write!(s, ",{},{},{}]", sp.thread, sp.start_us, sp.dur_us);
            }
            s.push(']');
        }
        if !self.counters.is_empty() {
            s.push_str(",\"counters\":{");
            for (i, (k, v)) in self.counters.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                esc(&mut s, k);
                let _ = write!(s, ":{v}");
            }
            s.push('}');
        }
        if !self.gauges.is_empty() {
            s.push_str(",\"gauges\":{");
            for (i, (k, g)) in self.gauges.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                esc(&mut s, k);
                let _ = write!(s, ":[{:?},{:?},{:?},{}]", g.last, g.min, g.max, g.sets);
            }
            s.push('}');
        }
        if !self.hists.is_empty() {
            s.push_str(",\"hists\":{");
            for (i, (k, h)) in self.hists.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                esc(&mut s, k);
                let _ = write!(s, ":[{},{},[", h.count, h.sum);
                for (j, (b, c)) in h.buckets.iter().enumerate() {
                    if j > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "[{b},{c}]");
                }
                s.push_str("]]");
            }
            s.push('}');
        }
        if !self.hot.is_empty() {
            s.push_str(",\"hot\":[");
            for (i, h) in self.hot.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "[{},{},{},", h.insn, h.cycles, h.hits);
                esc(&mut s, &h.label);
                s.push(']');
            }
            s.push(']');
        }
        s.push('}');
        s
    }

    /// Parse a value produced by [`TraceDelta::to_json`].
    pub fn parse(v: &Value) -> Result<TraceDelta, String> {
        if v.get("kind").and_then(Value::as_str) != Some("delta") {
            return Err("not a delta record".into());
        }
        let n = |k: &str| -> Result<u64, String> {
            v.get(k).and_then(Value::as_u64).ok_or_else(|| format!("delta: missing \"{k}\""))
        };
        let mut d = TraceDelta { seq: n("seq")?, t_us: n("t_us")?, ..Default::default() };
        if let Some(spans) = v.get("spans").and_then(Value::as_arr) {
            for sp in spans {
                let f = sp.as_arr().ok_or("delta: bad span row")?;
                let [id, parent, name, thread, start_us, dur_us] = f else {
                    return Err("delta: span row arity".into());
                };
                d.spans.push(SpanRecord {
                    id: id.as_u64().ok_or("delta: span id")?,
                    parent: match parent {
                        Value::Null => None,
                        p => Some(p.as_u64().ok_or("delta: span parent")?),
                    },
                    name: name.as_str().ok_or("delta: span name")?.to_string(),
                    thread: thread.as_u64().ok_or("delta: span thread")?,
                    start_us: start_us.as_u64().ok_or("delta: span start")?,
                    dur_us: dur_us.as_u64().ok_or("delta: span dur")?,
                });
            }
        }
        if let Some(Value::Obj(fields)) = v.get("counters") {
            for (k, c) in fields {
                d.counters.insert(k.clone(), c.as_u64().ok_or("delta: counter value")?);
            }
        }
        if let Some(Value::Obj(fields)) = v.get("gauges") {
            for (k, g) in fields {
                let f = g.as_arr().ok_or("delta: gauge row")?;
                let [last, min, max, sets] = f else {
                    return Err("delta: gauge row arity".into());
                };
                d.gauges.insert(
                    k.clone(),
                    GaugeStat {
                        last: last.as_f64().ok_or("delta: gauge last")?,
                        min: min.as_f64().ok_or("delta: gauge min")?,
                        max: max.as_f64().ok_or("delta: gauge max")?,
                        sets: sets.as_u64().ok_or("delta: gauge sets")?,
                    },
                );
            }
        }
        if let Some(Value::Obj(fields)) = v.get("hists") {
            for (k, h) in fields {
                let f = h.as_arr().ok_or("delta: hist row")?;
                let [count, sum, buckets] = f else {
                    return Err("delta: hist row arity".into());
                };
                let buckets = buckets
                    .as_arr()
                    .ok_or("delta: hist buckets")?
                    .iter()
                    .map(|pair| match pair.as_arr() {
                        Some([b, c]) => Ok((
                            b.as_u64().ok_or("delta: bucket index")? as u32,
                            c.as_u64().ok_or("delta: bucket count")?,
                        )),
                        _ => Err("delta: bad bucket pair".to_string()),
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                d.hists.insert(
                    k.clone(),
                    HistStat {
                        count: count.as_u64().ok_or("delta: hist count")?,
                        sum: sum.as_u64().ok_or("delta: hist sum")?,
                        buckets,
                    },
                );
            }
        }
        if let Some(hot) = v.get("hot").and_then(Value::as_arr) {
            for h in hot {
                let f = h.as_arr().ok_or("delta: hot row")?;
                let [insn, cycles, hits, label] = f else {
                    return Err("delta: hot row arity".into());
                };
                d.hot.push(HotInsn {
                    insn: insn.as_u64().ok_or("delta: hot insn")? as u32,
                    cycles: cycles.as_u64().ok_or("delta: hot cycles")?,
                    hits: hits.as_u64().ok_or("delta: hot hits")?,
                    label: label.as_str().ok_or("delta: hot label")?.to_string(),
                });
            }
        }
        Ok(d)
    }

    /// Parse one JSONL line into a delta.
    pub fn parse_line(line: &str) -> Result<TraceDelta, String> {
        TraceDelta::parse(&json::parse(line)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    fn snap_a() -> TraceSnapshot {
        let mut s = TraceSnapshot::default();
        s.spans.push(SpanRecord {
            id: 1,
            parent: None,
            name: "search".into(),
            thread: 0,
            start_us: 0,
            dur_us: 100,
        });
        s.counters.insert("evals".into(), 3);
        s.gauges.insert("q".into(), GaugeStat { last: 2.0, min: 0.0, max: 5.0, sets: 4 });
        s.hists.insert("lat".into(), HistStat { count: 2, sum: 9, buckets: vec![(2, 1), (3, 1)] });
        s.hot.push(HotInsn { insn: 4, cycles: 10, hits: 2, label: String::new() });
        s
    }

    fn snap_b() -> TraceSnapshot {
        let mut s = snap_a();
        s.spans.push(SpanRecord {
            id: 2,
            parent: Some(1),
            name: "eval".into(),
            thread: 1,
            start_us: 50,
            dur_us: 20,
        });
        *s.counters.get_mut("evals").unwrap() += 4;
        s.counters.insert("retries".into(), 1);
        s.gauges.insert("q".into(), GaugeStat { last: 0.0, min: 0.0, max: 7.5, sets: 9 });
        let h = s.hists.get_mut("lat").unwrap();
        h.count += 3;
        h.sum += 100;
        h.buckets = vec![(2, 2), (3, 1), (6, 2)];
        s.hot[0].cycles += 30;
        s.hot[0].hits += 6;
        s.hot[0].label = "m/f/b0@0x10: addsd".into();
        s.hot.push(HotInsn { insn: 9, cycles: 5, hits: 1, label: "m/g/b1@0x40: mulsd".into() });
        s.spans.sort_by_key(|x| (x.start_us, x.id));
        s.hot.sort_by_key(|h| h.insn);
        s
    }

    #[test]
    fn between_then_apply_reproduces_cur_exactly() {
        let (a, b) = (snap_a(), snap_b());
        let d = TraceDelta::between(&a, &b, 1, 1234);
        let mut merged = a.clone();
        d.apply(&mut merged);
        assert_eq!(merged, b);
        assert_eq!(merged.to_jsonl(), b.to_jsonl(), "merge must be byte-exact");
    }

    #[test]
    fn chain_of_deltas_from_empty_reproduces_final() {
        let empty = TraceSnapshot::default();
        let (a, b) = (snap_a(), snap_b());
        let d1 = TraceDelta::between(&empty, &a, 1, 10);
        let d2 = TraceDelta::between(&a, &b, 2, 20);
        let mut merged = TraceSnapshot::default();
        d1.apply(&mut merged);
        d2.apply(&mut merged);
        assert_eq!(merged.to_jsonl(), b.to_jsonl());
    }

    #[test]
    fn identical_snapshots_give_empty_delta() {
        let a = snap_b();
        let d = TraceDelta::between(&a, &a, 1, 0);
        assert!(d.is_empty());
    }

    #[test]
    fn json_round_trip_is_byte_exact() {
        let d = TraceDelta::between(&snap_a(), &snap_b(), 7, 99);
        let line = d.to_json();
        let back = TraceDelta::parse_line(&line).unwrap();
        assert_eq!(back, d);
        assert_eq!(back.to_json(), line);
        // empty delta round-trips too (all sections omitted)
        let e = TraceDelta { seq: 8, t_us: 100, ..Default::default() };
        let line = e.to_json();
        assert_eq!(line, "{\"kind\":\"delta\",\"seq\":8,\"t_us\":100}");
        assert_eq!(TraceDelta::parse_line(&line).unwrap(), e);
    }

    #[test]
    fn live_tracer_deltas_accumulate_to_snapshot() {
        let t = Tracer::new();
        t.incr("a", 1);
        let s1 = t.snapshot();
        {
            let _sp = t.span("work");
            t.incr("a", 2);
            t.observe("h", 5);
            t.gauge("g", 3.5);
        }
        let s2 = t.snapshot();
        let d1 = TraceDelta::between(&TraceSnapshot::default(), &s1, 1, 0);
        let d2 = TraceDelta::between(&s1, &s2, 2, 0);
        let mut merged = TraceSnapshot::default();
        d1.apply(&mut merged);
        d2.apply(&mut merged);
        assert_eq!(merged.to_jsonl(), s2.to_jsonl());
    }
}
