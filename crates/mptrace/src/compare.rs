//! Deterministic cross-run comparison with regression attribution.
//!
//! [`compare`] diffs two [`TraceSnapshot`]s (plus their optional
//! [`RunManifest`]s): counters, histogram quantiles, and per-insn model
//! cycles. Per-insn deltas are folded **up the structure tree** — the
//! same module → function → block → insn hierarchy the search
//! configures — by parsing each hot insn's structural label
//! (`module/func/b{block}@{addr}: {disasm}`), so a slowdown surfaces in
//! source terms: `function ep/vranlc: +1200 cycles (+12.0%), 3 insns
//! affected`. Output is byte-deterministic for fixed inputs; comparing
//! a run against itself yields zero deltas and no regressions.

use crate::registry::RunManifest;
use crate::snapshot::{HistStat, TraceSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Thresholds controlling what counts as a regression.
#[derive(Debug, Clone)]
pub struct CompareOptions {
    /// Flag a counter increase above this percentage.
    pub counter_pct: f64,
    /// Flag a function-level cycle increase above this percentage.
    pub cycles_pct: f64,
    /// Flag a histogram quantile increase above this percentage. Log2
    /// buckets quantize quantiles to powers of two, so one bucket step
    /// is a 2x move; the default only fires on a real step.
    pub quantile_pct: f64,
    /// Ignore function-level cycle deltas smaller than this (noise
    /// floor).
    pub min_cycles: u64,
    /// How many top attributions to print.
    pub top: usize,
}

impl Default for CompareOptions {
    fn default() -> Self {
        CompareOptions {
            counter_pct: 10.0,
            cycles_pct: 10.0,
            quantile_pct: 25.0,
            min_cycles: 1000,
            top: 10,
        }
    }
}

/// The result of a comparison.
#[derive(Debug, Clone, Default)]
pub struct CompareReport {
    /// Human-readable report, deterministic for fixed inputs.
    pub text: String,
    /// One line per regression crossing its threshold; empty means the
    /// newer run is no worse.
    pub regressions: Vec<String>,
}

/// Upper bound of log2 bucket `k` (see [`crate::snapshot::HistStat`]).
fn bucket_upper(k: u32) -> u64 {
    match k {
        0 => 0,
        k if k >= 64 => u64::MAX,
        k => (1u64 << k) - 1,
    }
}

/// Quantile `q` in `[0,1]` of a log2-bucketed histogram: the upper
/// bound of the first bucket whose cumulative count reaches `q·count`.
pub fn hist_quantile(h: &HistStat, q: f64) -> u64 {
    if h.count == 0 {
        return 0;
    }
    let need = (q * h.count as f64).ceil().max(1.0) as u64;
    let mut cum = 0u64;
    for &(b, c) in &h.buckets {
        cum += c;
        if cum >= need {
            return bucket_upper(b);
        }
    }
    h.buckets.last().map(|&(b, _)| bucket_upper(b)).unwrap_or(0)
}

/// Signed percent change from `a` to `b` (`None` when `a` is zero).
fn pct(a: f64, b: f64) -> Option<f64> {
    (a != 0.0).then(|| (b - a) / a * 100.0)
}

fn fmt_pct(p: Option<f64>) -> String {
    match p {
        Some(p) => format!("{p:+.1}%"),
        None => "new".into(),
    }
}

/// The `module/func` prefix of a structural insn label
/// (`module/func/b{block}@{addr}: {disasm}`); unlabeled or foreign
/// labels fold into `"(unattributed)"`.
fn label_function(label: &str) -> String {
    let path = label.split('@').next().unwrap_or("");
    let mut parts = path.split('/');
    match (parts.next(), parts.next()) {
        (Some(m), Some(f)) if !m.is_empty() && !f.is_empty() => format!("{m}/{f}"),
        _ => "(unattributed)".into(),
    }
}

struct FuncDelta {
    cycles_a: u64,
    cycles_b: u64,
    insns_changed: usize,
}

/// Compare run `a` (baseline) against run `b` (candidate).
///
/// `label_a` / `label_b` name the runs in the report (directory paths,
/// run ids). Manifests, when available, contribute an identity header
/// and a wall-time line. Regressions are *increases in `b`* beyond the
/// thresholds in `opts`.
pub fn compare(
    a: &TraceSnapshot,
    b: &TraceSnapshot,
    label_a: &str,
    label_b: &str,
    ma: Option<&RunManifest>,
    mb: Option<&RunManifest>,
    opts: &CompareOptions,
) -> CompareReport {
    let mut out = String::with_capacity(2048);
    let mut regressions = Vec::new();
    let _ = writeln!(out, "compare: A = {label_a}");
    let _ = writeln!(out, "         B = {label_b}");

    if let (Some(ma), Some(mb)) = (ma, mb) {
        let _ = writeln!(out, "\n== identity ==");
        let eq = |x: &str, y: &str| if x == y { "same".to_string() } else { format!("{x} -> {y}") };
        let _ = writeln!(out, "  bench:       {}", eq(&ma.bench, &mb.bench));
        let _ = writeln!(out, "  class:       {}", eq(&ma.class, &mb.class));
        if !ma.backend.is_empty() || !mb.backend.is_empty() {
            let _ = writeln!(out, "  backend:     {}", eq(&ma.backend, &mb.backend));
            if ma.backend != mb.backend {
                let _ = writeln!(
                    out,
                    "  WARNING: runs used different execution backends; cycle counts are \
                     bit-identical across backends but wall-clock and run-latency figures \
                     are not comparable"
                );
            }
        }
        let _ = writeln!(out, "  config hash: {}", eq(&ma.config_hash, &mb.config_hash));
        let _ = writeln!(
            out,
            "  tol:         {}",
            eq(&format!("{:e}", ma.tol), &format!("{:e}", mb.tol))
        );
        let _ = writeln!(
            out,
            "  threads:     {}",
            eq(&ma.threads.to_string(), &mb.threads.to_string())
        );
        if !ma.git.is_empty() || !mb.git.is_empty() {
            let _ = writeln!(out, "  git:         {}", eq(&ma.git, &mb.git));
        }
        let _ = writeln!(
            out,
            "  wall:        {:.3}s -> {:.3}s ({})",
            ma.wall_us as f64 / 1e6,
            mb.wall_us as f64 / 1e6,
            fmt_pct(pct(ma.wall_us as f64, mb.wall_us as f64))
        );
    }

    // -- counters ----------------------------------------------------
    let mut counter_rows = Vec::new();
    let keys: std::collections::BTreeSet<&String> =
        a.counters.keys().chain(b.counters.keys()).collect();
    for k in keys {
        let va = a.counters.get(k).copied().unwrap_or(0);
        let vb = b.counters.get(k).copied().unwrap_or(0);
        if va == vb {
            continue;
        }
        let p = pct(va as f64, vb as f64);
        counter_rows.push((k.clone(), va, vb, p));
        if vb > va && p.is_none_or(|p| p > opts.counter_pct) {
            regressions.push(format!("counter {k}: {va} -> {vb} ({})", fmt_pct(p)));
        }
    }
    let _ = writeln!(out, "\n== counters ({} changed) ==", counter_rows.len());
    for (k, va, vb, p) in &counter_rows {
        let _ = writeln!(out, "  {k}: {va} -> {vb} ({})", fmt_pct(*p));
    }

    // -- histogram quantiles ----------------------------------------
    let hist_keys: std::collections::BTreeSet<&String> =
        a.hists.keys().chain(b.hists.keys()).collect();
    let mut hist_lines = 0usize;
    let mut hist_out = String::new();
    for k in hist_keys {
        let empty = HistStat { count: 0, sum: 0, buckets: Vec::new() };
        let ha = a.hists.get(k).unwrap_or(&empty);
        let hb = b.hists.get(k).unwrap_or(&empty);
        let qs: Vec<(&str, u64, u64)> = [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)]
            .iter()
            .map(|&(n, q)| (n, hist_quantile(ha, q), hist_quantile(hb, q)))
            .collect();
        if qs.iter().all(|&(_, x, y)| x == y) && ha.count == hb.count {
            continue;
        }
        hist_lines += 1;
        let _ = write!(hist_out, "  {k}: count {} -> {}", ha.count, hb.count);
        for &(n, x, y) in &qs {
            let _ = write!(hist_out, ", {n} {x} -> {y}");
            if y > x {
                let p = pct(x as f64, y as f64);
                if p.is_none_or(|p| p > opts.quantile_pct) {
                    regressions.push(format!("hist {k} {n}: {x} -> {y} ({})", fmt_pct(p)));
                }
            }
        }
        hist_out.push('\n');
    }
    let _ = writeln!(out, "\n== histogram quantiles ({hist_lines} changed) ==");
    out.push_str(&hist_out);

    // -- per-insn cycles, folded up the structure tree ---------------
    let hot_a: BTreeMap<u32, (u64, &str)> =
        a.hot.iter().map(|h| (h.insn, (h.cycles, h.label.as_str()))).collect();
    let hot_b: BTreeMap<u32, (u64, &str)> =
        b.hot.iter().map(|h| (h.insn, (h.cycles, h.label.as_str()))).collect();
    let mut funcs: BTreeMap<String, FuncDelta> = BTreeMap::new();
    let insn_ids: std::collections::BTreeSet<u32> =
        hot_a.keys().chain(hot_b.keys()).copied().collect();
    for id in insn_ids {
        let (ca, la) = hot_a.get(&id).copied().unwrap_or((0, ""));
        let (cb, lb) = hot_b.get(&id).copied().unwrap_or((0, ""));
        let f = funcs
            .entry(label_function(if lb.is_empty() { la } else { lb }))
            .or_insert(FuncDelta { cycles_a: 0, cycles_b: 0, insns_changed: 0 });
        f.cycles_a += ca;
        f.cycles_b += cb;
        if ca != cb {
            f.insns_changed += 1;
        }
    }
    let mut rows: Vec<(String, FuncDelta)> =
        funcs.into_iter().filter(|(_, f)| f.cycles_a != f.cycles_b).collect();
    // Deterministic: largest absolute delta first, then name.
    rows.sort_by(|(na, fa), (nb, fb)| {
        let da = fa.cycles_b.abs_diff(fa.cycles_a);
        let db = fb.cycles_b.abs_diff(fb.cycles_a);
        db.cmp(&da).then_with(|| na.cmp(nb))
    });
    let _ = writeln!(out, "\n== cycle attribution ({} functions changed) ==", rows.len());
    for (name, f) in rows.iter().take(opts.top) {
        let delta = f.cycles_b as i128 - f.cycles_a as i128;
        let p = pct(f.cycles_a as f64, f.cycles_b as f64);
        let _ = writeln!(
            out,
            "  function {name}: {delta:+} cycles ({}), {} insn(s) affected",
            fmt_pct(p),
            f.insns_changed
        );
        if delta > 0 && delta as u64 >= opts.min_cycles && p.is_none_or(|p| p > opts.cycles_pct) {
            regressions.push(format!(
                "function {name}: {delta:+} cycles ({}), {} insn(s) affected",
                fmt_pct(p),
                f.insns_changed
            ));
        }
    }
    if rows.len() > opts.top {
        let _ = writeln!(out, "  ... and {} more", rows.len() - opts.top);
    }

    let _ = writeln!(out, "\n== verdict ==");
    if regressions.is_empty() {
        let _ = writeln!(out, "  no regressions (B is no worse than A at current thresholds)");
    } else {
        let _ = writeln!(out, "  {} regression(s):", regressions.len());
        for r in &regressions {
            let _ = writeln!(out, "  REGRESSION {r}");
        }
    }
    CompareReport { text: out, regressions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::HotInsn;

    fn base() -> TraceSnapshot {
        let mut s = TraceSnapshot::default();
        s.counters.insert("eval.runs".into(), 100);
        s.counters.insert("exec.verdict.pass".into(), 60);
        s.hists.insert(
            "eval.run_us".into(),
            HistStat { count: 10, sum: 1000, buckets: vec![(6, 8), (7, 2)] },
        );
        for (id, cycles, label) in [
            (1u32, 5000u64, "ep/vranlc/b0@0x10: mulsd f0, f1"),
            (2, 3000, "ep/vranlc/b0@0x18: addsd f0, f2"),
            (3, 8000, "ep/main/b2@0x40: divsd f3, f4"),
        ] {
            s.hot.push(HotInsn { insn: id, cycles, hits: cycles / 10, label: label.into() });
        }
        s
    }

    #[test]
    fn self_compare_is_clean_and_deterministic() {
        let s = base();
        let m = RunManifest { bench: "ep".into(), wall_us: 1, ..Default::default() };
        let r1 = compare(&s, &s, "x", "x", Some(&m), Some(&m), &CompareOptions::default());
        let r2 = compare(&s, &s, "x", "x", Some(&m), Some(&m), &CompareOptions::default());
        assert!(r1.regressions.is_empty(), "{:?}", r1.regressions);
        assert_eq!(r1.text, r2.text, "output must be byte-identical");
        assert!(r1.text.contains("no regressions"));
        assert!(r1.text.contains("counters (0 changed)"));
    }

    #[test]
    fn backend_mismatch_warns_but_is_not_a_regression() {
        let s = base();
        let ma = RunManifest { bench: "ep".into(), backend: "fast".into(), ..Default::default() };
        let mb =
            RunManifest { bench: "ep".into(), backend: "compiled".into(), ..Default::default() };
        let r = compare(&s, &s, "x", "y", Some(&ma), Some(&mb), &CompareOptions::default());
        assert!(r.text.contains("backend:     fast -> compiled"), "{}", r.text);
        assert!(r.text.contains("WARNING: runs used different execution backends"), "{}", r.text);
        // The warning is informational: it must not flip exit status.
        assert!(r.regressions.is_empty(), "{:?}", r.regressions);

        // Same backend (or legacy manifests without one) stays quiet.
        let r = compare(&s, &s, "x", "y", Some(&mb), Some(&mb), &CompareOptions::default());
        assert!(r.text.contains("backend:     same"), "{}", r.text);
        assert!(!r.text.contains("WARNING"), "{}", r.text);
        let legacy = RunManifest { bench: "ep".into(), ..Default::default() };
        let r = compare(&s, &s, "x", "y", Some(&legacy), Some(&legacy), &CompareOptions::default());
        assert!(!r.text.contains("backend:"), "{}", r.text);
    }

    #[test]
    fn injected_insn_delta_attributed_to_its_function() {
        let a = base();
        let mut b = base();
        // Slow down both vranlc insns; leave main alone.
        b.hot[0].cycles += 900;
        b.hot[1].cycles += 600;
        let r = compare(&a, &b, "a", "b", None, None, &CompareOptions::default());
        assert!(
            r.text.contains("function ep/vranlc: +1500 cycles (+18.8%), 2 insn(s) affected"),
            "{}",
            r.text
        );
        assert_eq!(r.regressions.len(), 1, "{:?}", r.regressions);
        assert!(r.regressions[0].contains("ep/vranlc"));
        assert!(!r.regressions.iter().any(|x| x.contains("ep/main")));
        // The reverse comparison is an improvement, not a regression.
        let r = compare(&b, &a, "b", "a", None, None, &CompareOptions::default());
        assert!(r.regressions.is_empty(), "{:?}", r.regressions);
        assert!(r.text.contains("function ep/vranlc: -1500 cycles"));
    }

    #[test]
    fn counter_and_quantile_regressions_respect_thresholds() {
        let a = base();
        let mut b = base();
        *b.counters.get_mut("eval.runs").unwrap() = 125; // +25%
        b.counters.insert("exec.retries".into(), 5); // new counter
        b.hists.insert(
            "eval.run_us".into(),
            HistStat { count: 10, sum: 4000, buckets: vec![(6, 2), (9, 8)] },
        );
        let r = compare(&a, &b, "a", "b", None, None, &CompareOptions::default());
        assert!(
            r.regressions.iter().any(|x| x.contains("counter eval.runs")),
            "{:?}",
            r.regressions
        );
        assert!(r.regressions.iter().any(|x| x.contains("exec.retries")));
        assert!(r.regressions.iter().any(|x| x.starts_with("hist eval.run_us")));
        // Raise thresholds: the +25% counter no longer fires.
        let lax = CompareOptions { counter_pct: 50.0, ..CompareOptions::default() };
        let r = compare(&a, &b, "a", "b", None, None, &lax);
        assert!(!r.regressions.iter().any(|x| x.contains("counter eval.runs")));
    }

    #[test]
    fn unlabeled_insns_fold_into_unattributed() {
        let mut a = TraceSnapshot::default();
        a.hot.push(HotInsn { insn: 1, cycles: 10, hits: 1, label: String::new() });
        let mut b = a.clone();
        b.hot[0].cycles = 5000;
        let r = compare(&a, &b, "a", "b", None, None, &CompareOptions::default());
        assert!(r.text.contains("function (unattributed): +4990 cycles"), "{}", r.text);
    }

    #[test]
    fn quantiles_from_log2_buckets() {
        let h = HistStat { count: 10, sum: 0, buckets: vec![(0, 5), (4, 4), (10, 1)] };
        assert_eq!(hist_quantile(&h, 0.50), 0);
        assert_eq!(hist_quantile(&h, 0.90), 15);
        assert_eq!(hist_quantile(&h, 0.99), 1023);
        assert_eq!(hist_quantile(&HistStat { count: 0, sum: 0, buckets: vec![] }, 0.5), 0);
    }
}
