//! Immutable trace snapshots and their JSONL wire format.
//!
//! A [`TraceSnapshot`] is everything a [`crate::Tracer`] recorded,
//! folded into plain ordered data: spans sorted by start time, metric
//! maps ordered by name, hot instructions ordered by id. It serializes
//! to a JSONL artifact (`trace.jsonl` in a run directory) whose
//! round-trip is **byte-exact**: `parse(s).to_jsonl() == s` for any
//! `s` produced by [`TraceSnapshot::to_jsonl`]. Floats print in Rust's
//! `{:?}` shortest-exact form, so the guarantee holds for gauges too.

use crate::json::{self, esc, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Snapshot-unique span id (allocation order).
    pub id: u64,
    /// Enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Span name, e.g. `"phase:bfs"` or `"eval"`.
    pub name: String,
    /// Process-wide ordinal of the recording thread.
    pub thread: u64,
    /// Start, microseconds since the tracer was created.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub dur_us: u64,
}

/// Last/min/max of a gauge over the run.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeStat {
    /// Most recently set value.
    pub last: f64,
    /// Smallest value ever set.
    pub min: f64,
    /// Largest value ever set.
    pub max: f64,
    /// Number of times the gauge was set.
    pub sets: u64,
}

/// A folded log2-bucketed histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistStat {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Sparse `(bucket index, count)` pairs, ascending, zero counts
    /// omitted. Bucket `k > 0` covers `[2^(k-1), 2^k)`; bucket 0 is 0.
    pub buckets: Vec<(u32, u64)>,
}

/// Aggregate interpreter time attributed to one instruction id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotInsn {
    /// Instruction id (index into the profiled program).
    pub insn: u32,
    /// Total model cycles spent in this instruction.
    pub cycles: u64,
    /// Times the instruction was dispatched.
    pub hits: u64,
    /// Optional human label (structural path); empty when unresolved.
    pub label: String,
}

/// Everything one traced run recorded. See the module docs for the
/// wire format.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceSnapshot {
    /// Completed spans, sorted by `(start_us, id)`.
    pub spans: Vec<SpanRecord>,
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, GaugeStat>,
    /// Histograms by name.
    pub hists: BTreeMap<String, HistStat>,
    /// Hot instructions, ascending by id.
    pub hot: Vec<HotInsn>,
}

impl TraceSnapshot {
    /// Serialize to JSONL: a `meta` header line followed by one object
    /// per span, counter, gauge, histogram, and hot instruction.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(4096);
        let _ = writeln!(s, "{{\"kind\":\"meta\",\"format\":\"mptrace\",\"version\":1}}");
        for sp in &self.spans {
            let _ = write!(s, "{{\"kind\":\"span\",\"id\":{},\"parent\":", sp.id);
            match sp.parent {
                Some(p) => {
                    let _ = write!(s, "{p}");
                }
                None => s.push_str("null"),
            }
            s.push_str(",\"name\":");
            esc(&mut s, &sp.name);
            let _ = writeln!(
                s,
                ",\"thread\":{},\"start_us\":{},\"dur_us\":{}}}",
                sp.thread, sp.start_us, sp.dur_us
            );
        }
        for (k, v) in &self.counters {
            s.push_str("{\"kind\":\"counter\",\"name\":");
            esc(&mut s, k);
            let _ = writeln!(s, ",\"value\":{v}}}");
        }
        for (k, g) in &self.gauges {
            s.push_str("{\"kind\":\"gauge\",\"name\":");
            esc(&mut s, k);
            let _ = writeln!(
                s,
                ",\"last\":{:?},\"min\":{:?},\"max\":{:?},\"sets\":{}}}",
                g.last, g.min, g.max, g.sets
            );
        }
        for (k, h) in &self.hists {
            s.push_str("{\"kind\":\"hist\",\"name\":");
            esc(&mut s, k);
            let _ = write!(s, ",\"count\":{},\"sum\":{},\"buckets\":[", h.count, h.sum);
            for (i, (b, c)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "[{b},{c}]");
            }
            s.push_str("]}\n");
        }
        for h in &self.hot {
            let _ = write!(
                s,
                "{{\"kind\":\"hot\",\"insn\":{},\"cycles\":{},\"hits\":{},\"label\":",
                h.insn, h.cycles, h.hits
            );
            esc(&mut s, &h.label);
            s.push_str("}\n");
        }
        s
    }

    /// [`TraceSnapshot::parse`], but tolerating a truncated **final**
    /// line from a crash-interrupted writer: the valid prefix is kept
    /// and a warning describing the dropped line is returned. Mid-file
    /// corruption is still a hard error, and [`TraceSnapshot::parse`]
    /// itself stays strict so the byte-exact round-trip guarantee is
    /// unaffected.
    pub fn parse_tolerant(text: &str) -> Result<(TraceSnapshot, Option<String>), String> {
        match TraceSnapshot::parse(text) {
            Ok(snap) => Ok((snap, None)),
            Err(first_err) => {
                let kept = match text.trim_end_matches('\n').rfind('\n') {
                    Some(cut) => &text[..cut + 1],
                    None => return Err(first_err),
                };
                let snap = TraceSnapshot::parse(kept).map_err(|_| first_err)?;
                let lines = kept.lines().count();
                Ok((
                    snap,
                    Some(format!(
                        "line {}: dropped truncated final record; keeping {lines} valid line(s)",
                        lines + 1
                    )),
                ))
            }
        }
    }

    /// Parse a JSONL artifact produced by [`TraceSnapshot::to_jsonl`].
    pub fn parse(text: &str) -> Result<TraceSnapshot, String> {
        let mut snap = TraceSnapshot::default();
        let mut saw_meta = false;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let kind = v
                .get("kind")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("line {}: missing \"kind\"", lineno + 1))?;
            let n = |k: &str| -> Result<u64, String> {
                v.get(k)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("line {}: missing field \"{k}\"", lineno + 1))
            };
            let f = |k: &str| -> Result<f64, String> {
                v.get(k)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("line {}: missing float \"{k}\"", lineno + 1))
            };
            let st = |k: &str| -> Result<String, String> {
                v.get(k)
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("line {}: missing string \"{k}\"", lineno + 1))
            };
            match kind {
                "meta" => {
                    if v.get("format").and_then(Value::as_str) != Some("mptrace") {
                        return Err("not an mptrace artifact".into());
                    }
                    saw_meta = true;
                }
                "span" => {
                    let parent = match v.get("parent") {
                        Some(Value::Null) | None => None,
                        Some(p) => Some(p.as_u64().ok_or("bad parent")?),
                    };
                    snap.spans.push(SpanRecord {
                        id: n("id")?,
                        parent,
                        name: st("name")?,
                        thread: n("thread")?,
                        start_us: n("start_us")?,
                        dur_us: n("dur_us")?,
                    });
                }
                "counter" => {
                    snap.counters.insert(st("name")?, n("value")?);
                }
                "gauge" => {
                    snap.gauges.insert(
                        st("name")?,
                        GaugeStat {
                            last: f("last")?,
                            min: f("min")?,
                            max: f("max")?,
                            sets: n("sets")?,
                        },
                    );
                }
                "hist" => {
                    let buckets = v
                        .get("buckets")
                        .and_then(Value::as_arr)
                        .ok_or("missing buckets")?
                        .iter()
                        .map(|pair| {
                            let pair = pair.as_arr().ok_or("bad bucket pair")?;
                            match pair {
                                [b, c] => Ok((
                                    b.as_u64().ok_or("bad bucket index")? as u32,
                                    c.as_u64().ok_or("bad bucket count")?,
                                )),
                                _ => Err("bad bucket pair".to_string()),
                            }
                        })
                        .collect::<Result<Vec<_>, String>>()?;
                    snap.hists.insert(
                        st("name")?,
                        HistStat { count: n("count")?, sum: n("sum")?, buckets },
                    );
                }
                "hot" => {
                    snap.hot.push(HotInsn {
                        insn: n("insn")? as u32,
                        cycles: n("cycles")?,
                        hits: n("hits")?,
                        label: st("label")?,
                    });
                }
                other => return Err(format!("line {}: unknown kind {other:?}", lineno + 1)),
            }
        }
        if !saw_meta {
            return Err("missing mptrace meta header line".into());
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceSnapshot {
        let mut snap = TraceSnapshot::default();
        snap.spans.push(SpanRecord {
            id: 1,
            parent: None,
            name: "search".into(),
            thread: 0,
            start_us: 0,
            dur_us: 1200,
        });
        snap.spans.push(SpanRecord {
            id: 2,
            parent: Some(1),
            name: "phase:bfs".into(),
            thread: 0,
            start_us: 5,
            dur_us: 800,
        });
        snap.counters.insert("rewrite.cache_hits".into(), 17);
        snap.gauges
            .insert("queue.depth".into(), GaugeStat { last: 0.0, min: 0.0, max: 12.5, sets: 40 });
        snap.hists
            .insert("eval.wall_us".into(), HistStat { count: 3, sum: 700, buckets: vec![(8, 3)] });
        snap.hot.push(HotInsn { insn: 4, cycles: 900, hits: 30, label: "main/b1/i4".into() });
        snap
    }

    #[test]
    fn jsonl_round_trip_is_byte_exact() {
        let snap = sample();
        let text = snap.to_jsonl();
        let back = TraceSnapshot::parse(&text).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.to_jsonl(), text, "round-trip must be byte-exact");
    }

    #[test]
    fn parse_rejects_foreign_artifacts() {
        assert!(TraceSnapshot::parse("{\"kind\":\"span\",\"id\":1}").is_err());
        assert!(TraceSnapshot::parse("{\"kind\":\"meta\",\"format\":\"other\"}").is_err());
    }

    #[test]
    fn tolerant_parse_drops_only_a_torn_final_line() {
        let snap = sample();
        let text = snap.to_jsonl();
        // Clean input: identical result, no warning.
        let (back, warn) = TraceSnapshot::parse_tolerant(&text).unwrap();
        assert_eq!(back, snap);
        assert!(warn.is_none());
        // Mid-record truncation of the final line: prefix kept, warning
        // emitted.
        let cut = &text[..text.len() - 12];
        let (back, warn) = TraceSnapshot::parse_tolerant(cut).unwrap();
        assert!(warn.unwrap().contains("truncated"));
        assert_eq!(back.spans, snap.spans);
        assert!(back.hot.is_empty(), "torn hot line must be dropped");
        // Corruption that is NOT a final-line truncation still errors.
        let corrupt = text.replacen("\"kind\":\"span\"", "\"kind\":\"nope\"", 1);
        assert!(TraceSnapshot::parse_tolerant(&corrupt).is_err());
    }

    #[test]
    fn gauge_floats_survive_exactly() {
        let mut snap = TraceSnapshot::default();
        snap.gauges.insert(
            "g".into(),
            GaugeStat { last: 0.1 + 0.2, min: f64::MIN_POSITIVE, max: 1e300, sets: 3 },
        );
        let back = TraceSnapshot::parse(&snap.to_jsonl()).unwrap();
        assert_eq!(back.gauges["g"].last.to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(back.gauges["g"].min.to_bits(), f64::MIN_POSITIVE.to_bits());
    }
}
