//! Unified observability for the mixed-precision search pipeline:
//! hierarchical wall-clock **spans**, cheap **metrics** (counters,
//! gauges, log2-bucketed histograms), and a per-instruction **hot-spot
//! profile** fed by the interpreter's const-gated step hook.
//!
//! # Design
//!
//! A [`Tracer`] is a cheaply cloneable handle (`Arc` inside) that worker
//! threads record into through a small number of mutex-protected
//! *shards*; each thread hashes to a shard by a process-wide thread
//! ordinal, so recording from the search's worker pool almost never
//! contends. Spans nest through a thread-local stack: dropping a
//! [`SpanGuard`] stamps the duration and restores the parent, so
//! `tracer.span("phase:bfs")` inside `tracer.span("search")` yields a
//! parent link without any explicit plumbing.
//!
//! Everything an observed run produced is folded into an immutable
//! [`snapshot::TraceSnapshot`], which serializes to a JSONL artifact
//! with a byte-exact round-trip and renders through the sinks in
//! [`sinks`]: Prometheus text exposition and folded-stack output for
//! `inferno`/flamegraph tooling.
//!
//! The overhead contract: code paths that are not handed a tracer must
//! cost *nothing*. Inside the interpreter this is enforced by
//! monomorphization ([`profiler::InsnProfiler`] implements
//! `fpvm::exec::StepObserver`, whose `ENABLED` constant gates the hook
//! out of the unprofiled loop entirely); everywhere else the tracer is
//! an `Option` checked before any formatting work happens.

pub mod compare;
pub mod delta;
pub mod json;
pub mod numprof;
pub mod profiler;
pub mod registry;
pub mod sinks;
pub mod snapshot;
pub mod stream;

use snapshot::{GaugeStat, HistStat, HotInsn, SpanRecord, TraceSnapshot};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Number of recording shards. Threads map to shards by a process-wide
/// ordinal, so up to this many threads record without lock contention.
const SHARDS: usize = 16;

/// Number of log2 histogram buckets: bucket `k` (1 ≤ k ≤ 64) counts
/// values in `[2^(k-1), 2^k)`; bucket 0 counts zeros.
pub const HIST_BUCKETS: usize = 65;

static NEXT_THREAD_ORD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Process-wide thread ordinal, assigned on first trace activity.
    static THREAD_ORD: usize = NEXT_THREAD_ORD.fetch_add(1, Ordering::Relaxed);
    /// Stack of open spans on this thread: `(tracer identity, span id)`.
    /// Tracer identity keys the frames so two tracers interleaved on one
    /// thread (as in tests) never cross-link parents.
    static SPAN_STACK: RefCell<Vec<(usize, u64)>> = const { RefCell::new(Vec::new()) };
}

#[derive(Default)]
struct Shard {
    spans: Vec<SpanRecord>,
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, Hist>,
}

#[derive(Clone)]
struct Hist {
    count: u64,
    sum: u64,
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Hist {
    fn default() -> Hist {
        Hist { count: 0, sum: 0, buckets: [0; HIST_BUCKETS] }
    }
}

/// Bucket index of `v` in a log2 histogram: 0 for 0, else
/// `64 - leading_zeros` (so 1 → bucket 1, 2..4 → bucket 2, …).
pub fn log2_bucket(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

#[derive(Default)]
struct GaugeCell {
    last: f64,
    min: f64,
    max: f64,
    sets: u64,
}

/// Per-instruction cycle/hit totals merged from profiled interpreter
/// runs, plus optional human labels resolved late.
#[derive(Default)]
struct HotAccum {
    cycles: Vec<u64>,
    hits: Vec<u64>,
    labels: BTreeMap<u32, String>,
}

struct Inner {
    start: Instant,
    next_span: AtomicU64,
    shards: [Mutex<Shard>; SHARDS],
    gauges: Mutex<BTreeMap<String, GaugeCell>>,
    hot: Mutex<HotAccum>,
}

/// A cheaply cloneable recording handle; see the crate docs.
///
/// All recording methods take `&self` and are safe to call from any
/// thread. None of them can fail, and none of them panic on poisoned
/// internal locks (a panicking worker must not take observability down
/// with it).
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Tracer {
    /// A fresh, empty tracer.
    pub fn new() -> Tracer {
        Tracer {
            inner: Arc::new(Inner {
                start: Instant::now(),
                next_span: AtomicU64::new(1),
                shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
                gauges: Mutex::new(BTreeMap::new()),
                hot: Mutex::new(HotAccum::default()),
            }),
        }
    }

    /// Microseconds elapsed since this tracer was created.
    pub fn now_us(&self) -> u64 {
        self.inner.start.elapsed().as_micros() as u64
    }

    fn identity(&self) -> usize {
        Arc::as_ptr(&self.inner) as usize
    }

    fn shard(&self) -> MutexGuard<'_, Shard> {
        let ord = THREAD_ORD.with(|o| *o);
        relock(&self.inner.shards[ord % SHARDS])
    }

    /// Open a span. The returned guard records the span (with its
    /// parent link and duration) when dropped; nest freely.
    pub fn span(&self, name: impl Into<String>) -> SpanGuard<'_> {
        let id = self.inner.next_span.fetch_add(1, Ordering::Relaxed);
        let me = self.identity();
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.iter().rev().find(|(t, _)| *t == me).map(|(_, id)| *id);
            s.push((me, id));
            parent
        });
        SpanGuard {
            tracer: self,
            id,
            parent,
            name: name.into(),
            start_us: self.now_us(),
            t0: Instant::now(),
        }
    }

    /// Add `by` to the named monotonic counter.
    pub fn incr(&self, name: &str, by: u64) {
        let mut shard = self.shard();
        *shard.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Set the named gauge to `v` (last/min/max are all retained).
    pub fn gauge(&self, name: &str, v: f64) {
        let mut gauges = relock(&self.inner.gauges);
        let cell = gauges.entry(name.to_string()).or_default();
        if cell.sets == 0 || v < cell.min {
            cell.min = v;
        }
        if cell.sets == 0 || v > cell.max {
            cell.max = v;
        }
        cell.last = v;
        cell.sets += 1;
    }

    /// Record `v` into the named log2-bucketed histogram.
    pub fn observe(&self, name: &str, v: u64) {
        let mut shard = self.shard();
        let h = shard.hists.entry(name.to_string()).or_default();
        h.count += 1;
        h.sum += v;
        h.buckets[log2_bucket(v)] += 1;
    }

    /// Merge a per-run instruction profile into the global hot-spot
    /// accumulator. Indices are instruction ids; the accumulator grows
    /// to fit (the incremental rewriter mints ids monotonically).
    pub fn merge_hot(&self, prof: &profiler::InsnProfiler) {
        let mut hot = relock(&self.inner.hot);
        for (i, s) in prof.iter() {
            let i = i as usize;
            if hot.cycles.len() <= i {
                hot.cycles.resize(i + 1, 0);
                hot.hits.resize(i + 1, 0);
            }
            hot.cycles[i] += s.cycles;
            hot.hits[i] += s.hits;
        }
    }

    /// Attach a human label (e.g. the structural path of the original
    /// instruction) to instruction id `id` for reports and sinks.
    pub fn label_insn(&self, id: u32, label: impl Into<String>) {
        relock(&self.inner.hot).labels.insert(id, label.into());
    }

    /// Fold everything recorded so far into an immutable snapshot.
    ///
    /// Spans are sorted by `(start_us, id)`; metric maps are ordered by
    /// name; only instructions that were actually hit appear in `hot`.
    pub fn snapshot(&self) -> TraceSnapshot {
        let mut spans = Vec::new();
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut hists: BTreeMap<String, Hist> = BTreeMap::new();
        for shard in &self.inner.shards {
            let shard = relock(shard);
            spans.extend(shard.spans.iter().cloned());
            for (k, v) in &shard.counters {
                *counters.entry(k.clone()).or_insert(0) += v;
            }
            for (k, h) in &shard.hists {
                let dst = hists.entry(k.clone()).or_default();
                dst.count += h.count;
                dst.sum += h.sum;
                for (d, s) in dst.buckets.iter_mut().zip(&h.buckets) {
                    *d += s;
                }
            }
        }
        spans.sort_by_key(|s| (s.start_us, s.id));
        let gauges = relock(&self.inner.gauges)
            .iter()
            .map(|(k, c)| {
                (k.clone(), GaugeStat { last: c.last, min: c.min, max: c.max, sets: c.sets })
            })
            .collect();
        let hists = hists
            .into_iter()
            .map(|(k, h)| {
                let buckets = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| **c != 0)
                    .map(|(i, c)| (i as u32, *c))
                    .collect();
                (k, HistStat { count: h.count, sum: h.sum, buckets })
            })
            .collect();
        let hot_guard = relock(&self.inner.hot);
        let hot = hot_guard
            .cycles
            .iter()
            .zip(&hot_guard.hits)
            .enumerate()
            .filter(|(_, (&c, &h))| c != 0 || h != 0)
            .map(|(i, (&cycles, &hits))| HotInsn {
                insn: i as u32,
                cycles,
                hits,
                label: hot_guard.labels.get(&(i as u32)).cloned().unwrap_or_default(),
            })
            .collect();
        TraceSnapshot { spans, counters, gauges, hists, hot }
    }
}

/// RAII guard for an open span; records on drop.
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    id: u64,
    parent: Option<u64>,
    name: String,
    start_us: u64,
    t0: Instant,
}

impl SpanGuard<'_> {
    /// The span's id (useful only for tests).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let me = self.tracer.identity();
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            if let Some(pos) = s.iter().rposition(|(t, id)| *t == me && *id == self.id) {
                s.remove(pos);
            }
        });
        let rec = SpanRecord {
            id: self.id,
            parent: self.parent,
            name: std::mem::take(&mut self.name),
            thread: THREAD_ORD.with(|o| *o) as u64,
            start_us: self.start_us,
            dur_us: self.t0.elapsed().as_micros() as u64,
        };
        self.tracer.shard().spans.push(rec);
    }
}

static GLOBAL: OnceLock<Tracer> = OnceLock::new();

/// Install (or fetch) the process-global tracer — the "cheap global
/// registry" used by entry points like the `craft` CLI. Library code
/// should prefer explicitly threaded [`Tracer`] handles; this exists so
/// a binary can opt a whole run into tracing in one place.
pub fn install_global() -> &'static Tracer {
    GLOBAL.get_or_init(Tracer::new)
}

/// The process-global tracer, if one was installed.
pub fn try_global() -> Option<&'static Tracer> {
    GLOBAL.get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record_parent_links() {
        let t = Tracer::new();
        {
            let _outer = t.span("outer");
            let _inner = t.span("inner");
        }
        let snap = t.snapshot();
        assert_eq!(snap.spans.len(), 2);
        let outer = snap.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = snap.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(outer.id));
    }

    #[test]
    fn two_tracers_on_one_thread_do_not_cross_link() {
        let a = Tracer::new();
        let b = Tracer::new();
        let _sa = a.span("a-root");
        let _sb = b.span("b-root");
        let sb2 = b.span("b-child");
        drop(sb2);
        drop(_sb);
        let snap = b.snapshot();
        let root = snap.spans.iter().find(|s| s.name == "b-root").unwrap();
        let child = snap.spans.iter().find(|s| s.name == "b-child").unwrap();
        assert_eq!(root.parent, None, "b-root must not adopt a-root as parent");
        assert_eq!(child.parent, Some(root.id));
    }

    #[test]
    fn counters_merge_across_threads() {
        let t = Tracer::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = t.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        t.incr("evals", 1);
                    }
                });
            }
        });
        assert_eq!(t.snapshot().counters["evals"], 400);
    }

    #[test]
    fn gauge_tracks_last_min_max() {
        let t = Tracer::new();
        t.gauge("depth", 3.0);
        t.gauge("depth", 9.0);
        t.gauge("depth", 1.0);
        let g = &t.snapshot().gauges["depth"];
        assert_eq!((g.last, g.min, g.max, g.sets), (1.0, 1.0, 9.0, 3));
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 3);
        assert_eq!(log2_bucket(u64::MAX), 64);
        let t = Tracer::new();
        for v in [0u64, 1, 3, 4, 1000] {
            t.observe("lat", v);
        }
        let h = &t.snapshot().hists["lat"];
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1008);
        assert_eq!(h.buckets.iter().map(|(_, c)| c).sum::<u64>(), 5);
    }

    #[test]
    fn recording_survives_a_poisoned_shard() {
        let t = Tracer::new();
        let t2 = t.clone();
        // Poison every shard lock by panicking while holding it.
        for shard in &t.inner.shards {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _g = shard.lock().unwrap();
                panic!("poison");
            }));
        }
        t2.incr("after", 1);
        assert_eq!(t2.snapshot().counters["after"], 1);
    }

    #[test]
    fn hot_accumulator_merges_and_labels() {
        let t = Tracer::new();
        use fpvm::exec::StepObserver as _;
        let mut p = profiler::InsnProfiler::new(4);
        for _ in 0..5 {
            p.step(fpvm::InsnId(2), 2);
        }
        t.merge_hot(&p);
        t.merge_hot(&p);
        t.label_insn(2, "main/b0/i2");
        let snap = t.snapshot();
        assert_eq!(snap.hot.len(), 1);
        assert_eq!(snap.hot[0].insn, 2);
        assert_eq!(snap.hot[0].cycles, 20);
        assert_eq!(snap.hot[0].hits, 10);
        assert_eq!(snap.hot[0].label, "main/b0/i2");
    }
}
