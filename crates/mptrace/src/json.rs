//! A minimal, dependency-free JSON parser (objects, arrays, strings,
//! numbers, booleans, null).
//!
//! Promoted from `mpsearch::events` so the event log, the shadow
//! sensitivity profile, the trace snapshot, and the `BENCH_*.json`
//! readers all share one implementation (`mpsearch::events::json`
//! re-exports this module for backwards compatibility). It also carries
//! the shared string-escaping helper [`esc`] used by every hand-rolled
//! JSONL writer in the workspace.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers below 2^53 are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
    /// The value as an unsigned integer, if numeric and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().filter(|n| *n >= 0.0).map(|n| n as u64)
    }
    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Append `s` to `out` as a quoted, escaped JSON string literal.
pub fn esc(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct P<'a> {
    s: &'a [u8],
    i: usize,
}

impl P<'_> {
    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }
    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }
    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.i))
        }
    }
    fn value(&mut self) -> Result<Value, String> {
        self.ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }
    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }
    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.i += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.i += 1;
                    let e = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            self.i += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i - 1)),
                    }
                }
                _ => {
                    // advance one UTF-8 scalar
                    let rest = std::str::from_utf8(&self.s[self.i..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }
    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }
    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.eat(b':')?;
            let v = self.value()?;
            fields.push((k, v));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }
}

/// Parse a JSONL document into `(line number, value)` pairs, tolerating
/// a truncated **final** line.
///
/// A run killed mid-write (crash, OOM, SIGKILL) leaves its last JSONL
/// record half-flushed. Every reader of crash-adjacent artifacts
/// (`events.jsonl`, `trace.jsonl`, `live.jsonl`, shadow profiles) wants
/// the same policy: keep the valid prefix, drop the torn tail, and say
/// so. Returns the parsed lines plus an optional warning describing the
/// dropped line. A malformed line *before* the final one is still a hard
/// error — that is corruption, not truncation.
#[allow(clippy::type_complexity)]
pub fn parse_jsonl_tolerant(text: &str) -> Result<(Vec<(usize, Value)>, Option<String>), String> {
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty())
        .collect();
    let mut out = Vec::with_capacity(lines.len());
    for (idx, &(lineno, line)) in lines.iter().enumerate() {
        match parse(line) {
            Ok(v) => out.push((lineno, v)),
            Err(e) if idx + 1 == lines.len() => {
                let warning = format!(
                    "line {lineno}: dropped truncated final record ({e}); \
                     keeping {} valid line(s)",
                    out.len()
                );
                return Ok((out, Some(warning)));
            }
            Err(e) => return Err(format!("line {lineno}: {e}")),
        }
    }
    Ok((out, None))
}

/// Parse a complete JSON document.
pub fn parse(s: &str) -> Result<Value, String> {
    let mut p = P { s: s.as_bytes(), i: 0 };
    let v = p.value()?;
    p.ws();
    if p.i != p.s.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\"y"},"d":true,"e":null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\"y"));
        assert_eq!(v.get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e").unwrap(), &Value::Null);
    }

    #[test]
    fn esc_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\rf\u{1}g";
        let mut doc = String::from("{\"k\":");
        esc(&mut doc, nasty);
        doc.push('}');
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} {}").is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn tolerant_jsonl_keeps_valid_prefix_on_truncation() {
        let text = "{\"a\":1}\n{\"b\":2}\n{\"c\":3,\"d\":\"trunc";
        let (lines, warn) = parse_jsonl_tolerant(text).unwrap();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].0, 1);
        assert_eq!(lines[1].1.get("b").unwrap().as_u64(), Some(2));
        let warn = warn.expect("truncation must warn");
        assert!(warn.contains("line 3"), "{warn}");
        assert!(warn.contains("2 valid line(s)"), "{warn}");
    }

    #[test]
    fn tolerant_jsonl_clean_input_has_no_warning() {
        let (lines, warn) = parse_jsonl_tolerant("{\"a\":1}\n\n{\"b\":2}\n").unwrap();
        assert_eq!(lines.len(), 2);
        assert!(warn.is_none());
        // Fully-empty input is valid and empty.
        let (lines, warn) = parse_jsonl_tolerant("").unwrap();
        assert!(lines.is_empty() && warn.is_none());
    }

    #[test]
    fn tolerant_jsonl_rejects_mid_file_corruption() {
        let err = parse_jsonl_tolerant("{\"a\":1}\n{bad\n{\"b\":2}\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }
}
