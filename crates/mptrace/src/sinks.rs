//! Render a [`TraceSnapshot`] for external tooling.
//!
//! Two formats: [`prometheus`] emits Prometheus text exposition
//! (`craft metrics run/trace.jsonl --prom out.prom`), and [`folded`]
//! emits folded stacks (`name;child;grandchild <µs>`) directly
//! consumable by `inferno-flamegraph` / `flamegraph.pl`.

use crate::snapshot::TraceSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Sanitize a metric or label fragment into `[a-zA-Z0-9_:]`.
fn prom_name(s: &str) -> String {
    s.chars().map(|c| if c.is_ascii_alphanumeric() || c == ':' { c } else { '_' }).collect()
}

/// Escape a Prometheus label value.
fn prom_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Decompose a numerical-health counter name into its Prometheus base
/// name and derived labels: the `fp.*` family encodes the instruction
/// id as an `.i<id>` suffix and the reduced format as a name segment,
/// which become real `insn`/`format` labels so one metric name covers
/// the whole family. `fp.sat.bf16.i12` → (`fp_sat`,
/// `format="bf16",insn="12"`); non-`fp.` names return `None` and render
/// the classic way.
fn fp_series(name: &str) -> Option<(String, String)> {
    let rest = name.strip_prefix("fp.")?;
    let mut segs = rest.split('.');
    let family = segs.next().filter(|f| !f.is_empty())?;
    let labels: Vec<String> = segs
        .map(|seg| {
            match seg
                .strip_prefix('i')
                .filter(|d| !d.is_empty() && d.bytes().all(|b| b.is_ascii_digit()))
            {
                Some(d) => format!("insn=\"{d}\""),
                None => format!("format=\"{}\"", prom_label(seg)),
            }
        })
        .collect();
    Some((format!("fp_{}", prom_name(family)), labels.join(",")))
}

/// Render the snapshot in Prometheus text exposition format. All
/// series carry the `craft_` prefix; histograms expose cumulative
/// log2 buckets with `le` equal to each bucket's inclusive upper bound.
pub fn prometheus(snap: &TraceSnapshot) -> String {
    prometheus_labeled(snap, &[])
}

/// [`prometheus`], with a constant label set attached to every sample.
/// The daemon exposes each job's snapshot with `job="<id>"` (plus
/// bench/class) so many jobs' series coexist in one scrape without name
/// collisions. With an empty label set the output is byte-identical to
/// [`prometheus`].
pub fn prometheus_labeled(snap: &TraceSnapshot, labels: &[(&str, &str)]) -> String {
    let base: String = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", prom_name(k), prom_label(v)))
        .collect::<Vec<_>>()
        .join(",");
    // Merge the constant labels with a sample's own (`extra`) labels.
    let lbl = |extra: &str| -> String {
        match (base.is_empty(), extra.is_empty()) {
            (true, true) => String::new(),
            (true, false) => format!("{{{extra}}}"),
            (false, true) => format!("{{{base}}}"),
            (false, false) => format!("{{{extra},{base}}}"),
        }
    };
    let mut out = String::with_capacity(4096);
    let mut typed: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for (name, v) in &snap.counters {
        if let Some((base, extra)) = fp_series(name) {
            let n = format!("craft_{base}_total");
            if typed.insert(n.clone()) {
                let _ = writeln!(out, "# TYPE {n} counter");
            }
            let _ = writeln!(out, "{n}{} {v}", lbl(&extra));
            continue;
        }
        let n = format!("craft_{}_total", prom_name(name));
        let _ = writeln!(out, "# TYPE {n} counter\n{n}{} {v}", lbl(""));
    }
    for (name, g) in &snap.gauges {
        let n = format!("craft_{}", prom_name(name));
        let _ = writeln!(out, "# TYPE {n} gauge\n{n}{} {}", lbl(""), g.last);
        let _ = writeln!(out, "# TYPE {n}_min gauge\n{n}_min{} {}", lbl(""), g.min);
        let _ = writeln!(out, "# TYPE {n}_max gauge\n{n}_max{} {}", lbl(""), g.max);
    }
    for (name, h) in &snap.hists {
        let n = format!("craft_{}", prom_name(name));
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cum = 0u64;
        for &(bucket, count) in &h.buckets {
            cum += count;
            // Bucket k > 0 covers [2^(k-1), 2^k); its inclusive upper
            // bound is 2^k - 1. Bucket 0 holds exact zeros.
            let le = if bucket == 0 {
                0u64
            } else if bucket >= 64 {
                u64::MAX
            } else {
                (1u64 << bucket) - 1
            };
            let _ = writeln!(out, "{n}_bucket{} {cum}", lbl(&format!("le=\"{le}\"")));
        }
        let _ = writeln!(out, "{n}_bucket{} {}", lbl("le=\"+Inf\""), h.count);
        let _ = writeln!(out, "{n}_sum{} {}", lbl(""), h.sum);
        let _ = writeln!(out, "{n}_count{} {}", lbl(""), h.count);
    }
    // Spans aggregate per name: total time and call count.
    let mut by_name: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for sp in &snap.spans {
        let e = by_name.entry(&sp.name).or_insert((0, 0));
        e.0 += sp.dur_us;
        e.1 += 1;
    }
    if !by_name.is_empty() {
        out.push_str("# TYPE craft_span_us_sum counter\n");
        for (name, (sum, _)) in &by_name {
            let _ = writeln!(
                out,
                "craft_span_us_sum{} {sum}",
                lbl(&format!("span=\"{}\"", prom_label(name)))
            );
        }
        out.push_str("# TYPE craft_span_count counter\n");
        for (name, (_, count)) in &by_name {
            let _ = writeln!(
                out,
                "craft_span_count{} {count}",
                lbl(&format!("span=\"{}\"", prom_label(name)))
            );
        }
    }
    if !snap.hot.is_empty() {
        out.push_str("# TYPE craft_insn_cycles_total counter\n");
        for h in &snap.hot {
            let _ = writeln!(
                out,
                "craft_insn_cycles_total{} {}",
                lbl(&format!("insn=\"{}\",label=\"{}\"", h.insn, prom_label(&h.label))),
                h.cycles
            );
        }
        out.push_str("# TYPE craft_insn_hits_total counter\n");
        for h in &snap.hot {
            let _ = writeln!(
                out,
                "craft_insn_hits_total{} {}",
                lbl(&format!("insn=\"{}\",label=\"{}\"", h.insn, prom_label(&h.label))),
                h.hits
            );
        }
    }
    out
}

/// Render the span tree as folded stacks: one line per distinct stack,
/// `root;child;leaf <exclusive µs>`, sorted. Frame names have `;` and
/// whitespace replaced so the output is directly flamegraph-safe.
pub fn folded(snap: &TraceSnapshot) -> String {
    let by_id: BTreeMap<u64, &crate::snapshot::SpanRecord> =
        snap.spans.iter().map(|s| (s.id, s)).collect();
    // Exclusive time: duration minus time of direct children.
    let mut child_us: BTreeMap<u64, u64> = BTreeMap::new();
    for sp in &snap.spans {
        if let Some(p) = sp.parent {
            *child_us.entry(p).or_insert(0) += sp.dur_us;
        }
    }
    let frame = |name: &str| -> String {
        name.chars().map(|c| if c == ';' || c.is_whitespace() { '_' } else { c }).collect()
    };
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for sp in &snap.spans {
        let mut parts = vec![frame(&sp.name)];
        let mut cur = sp.parent;
        // Walk ancestry; `take` bounds the loop against malformed cycles.
        for _ in 0..snap.spans.len() {
            match cur.and_then(|id| by_id.get(&id)) {
                Some(p) => {
                    parts.push(frame(&p.name));
                    cur = p.parent;
                }
                None => break,
            }
        }
        parts.reverse();
        let excl = sp.dur_us.saturating_sub(child_us.get(&sp.id).copied().unwrap_or(0));
        *stacks.entry(parts.join(";")).or_insert(0) += excl;
    }
    let mut out = String::with_capacity(1024);
    for (stack, us) in &stacks {
        let _ = writeln!(out, "{stack} {us}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{GaugeStat, HistStat, HotInsn, SpanRecord};

    fn sample() -> TraceSnapshot {
        let mut snap = TraceSnapshot::default();
        for (id, parent, name, dur) in [
            (1, None, "search", 100u64),
            (2, Some(1), "phase:bfs", 60),
            (3, Some(2), "eval", 40),
            (4, Some(1), "phase:union", 20),
        ] {
            snap.spans.push(SpanRecord {
                id,
                parent,
                name: name.into(),
                thread: 0,
                start_us: id,
                dur_us: dur,
            });
        }
        snap.counters.insert("evals".into(), 5);
        snap.gauges
            .insert("queue.depth".into(), GaugeStat { last: 0.0, min: 0.0, max: 4.0, sets: 9 });
        snap.hists.insert(
            "eval wall".into(),
            HistStat { count: 4, sum: 22, buckets: vec![(0, 1), (3, 3)] },
        );
        snap.hot.push(HotInsn { insn: 7, cycles: 123, hits: 9, label: "main/b0/i7".into() });
        snap
    }

    #[test]
    fn prometheus_output_is_well_formed() {
        let text = prometheus(&sample());
        assert!(text.contains("# TYPE craft_evals_total counter"));
        assert!(text.contains("craft_evals_total 5"));
        assert!(text.contains("craft_queue_depth_max 4"));
        // Histogram name sanitized, cumulative buckets, +Inf terminal.
        assert!(text.contains("craft_eval_wall_bucket{le=\"0\"} 1"));
        assert!(text.contains("craft_eval_wall_bucket{le=\"7\"} 4"));
        assert!(text.contains("craft_eval_wall_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("craft_eval_wall_sum 22"));
        assert!(text.contains("craft_insn_cycles_total{insn=\"7\",label=\"main/b0/i7\"} 123"));
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("line has a value");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok() || value == "+Inf", "bad value {value:?}");
        }
    }

    #[test]
    fn fp_counters_render_with_insn_and_format_labels() {
        let mut snap = TraceSnapshot::default();
        snap.counters.insert("fp.nan".into(), 3);
        snap.counters.insert("fp.nan.i12".into(), 3);
        snap.counters.insert("fp.sat.bf16".into(), 7);
        snap.counters.insert("fp.sat.bf16.i12".into(), 7);
        snap.counters.insert("fp.quantize.m3e4".into(), 9);
        let text = prometheus(&snap);
        assert!(text.contains("craft_fp_nan_total 3"), "{text}");
        assert!(text.contains("craft_fp_nan_total{insn=\"12\"} 3"), "{text}");
        assert!(text.contains("craft_fp_sat_total{format=\"bf16\"} 7"), "{text}");
        assert!(text.contains("craft_fp_sat_total{format=\"bf16\",insn=\"12\"} 7"), "{text}");
        assert!(text.contains("craft_fp_quantize_total{format=\"m3e4\"} 9"), "{text}");
        // One TYPE line per metric name, not per series.
        assert_eq!(text.matches("# TYPE craft_fp_nan_total counter").count(), 1, "{text}");
        assert_eq!(text.matches("# TYPE craft_fp_sat_total counter").count(), 1, "{text}");
        // Constant labels merge after the derived ones.
        let labeled = prometheus_labeled(&snap, &[("job", "j1")]);
        assert!(
            labeled.contains("craft_fp_sat_total{format=\"bf16\",insn=\"12\",job=\"j1\"} 7"),
            "{labeled}"
        );
        assert!(labeled.contains("craft_fp_nan_total{job=\"j1\"} 3"), "{labeled}");
    }

    #[test]
    fn prometheus_labeled_injects_constant_labels_everywhere() {
        let snap = sample();
        let text = prometheus_labeled(&snap, &[("job", "ep-1"), ("bench", "ep")]);
        // Bare series gain the label set; labeled ones merge it after
        // their own labels.
        assert!(text.contains("craft_evals_total{job=\"ep-1\",bench=\"ep\"} 5"), "{text}");
        assert!(text.contains("craft_queue_depth_max{job=\"ep-1\",bench=\"ep\"} 4"), "{text}");
        assert!(
            text.contains("craft_eval_wall_bucket{le=\"0\",job=\"ep-1\",bench=\"ep\"} 1"),
            "{text}"
        );
        assert!(
            text.contains(
                "craft_insn_cycles_total{insn=\"7\",label=\"main/b0/i7\",job=\"ep-1\",bench=\"ep\"} 123"
            ),
            "{text}"
        );
        // Every sample line carries the job label exactly once.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.matches("job=\"ep-1\"").count(), 1, "{line}");
        }
        // Empty label set is byte-identical to the unlabeled renderer.
        assert_eq!(prometheus_labeled(&snap, &[]), prometheus(&snap));
    }

    #[test]
    fn prometheus_escapes_hostile_label_values() {
        let mut snap = TraceSnapshot::default();
        // Disasm-derived labels can carry quotes, backslashes, and even
        // newlines; all must be escaped per the exposition format.
        snap.hot.push(HotInsn {
            insn: 3,
            cycles: 50,
            hits: 2,
            label: "ep/f\\g/b0@0x8: mov \"x\"\nnext".into(),
        });
        snap.spans.push(SpanRecord {
            id: 1,
            parent: None,
            name: "phase \"q\"\\end\nx".into(),
            thread: 0,
            start_us: 0,
            dur_us: 7,
        });
        let text = prometheus(&snap);
        assert!(
            text.contains(
                "craft_insn_cycles_total{insn=\"3\",label=\"ep/f\\\\g/b0@0x8: mov \\\"x\\\"\\nnext\"} 50"
            ),
            "{text}"
        );
        assert!(
            text.contains("craft_span_us_sum{span=\"phase \\\"q\\\"\\\\end\\nx\"} 7"),
            "{text}"
        );
        // No raw (unescaped) newline may survive inside any label value,
        // and every line must still be single-record well-formed.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("line has a value");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok() || value == "+Inf", "bad value {value:?}");
            if let Some(open) = line.find('{') {
                let inner = &line[open..line.rfind('}').unwrap()];
                assert!(!inner.contains('\n'));
            }
        }
    }

    #[test]
    fn prometheus_labeled_escapes_hostile_values_on_gauge_and_histogram_series() {
        // PR 5 only exercised escaping on counter-shaped series (hot
        // insns, spans); the daemon now attaches constant labels built
        // from job specs (bench/backend/lattice) to gauge and histogram
        // series too, and those values can carry quotes, backslashes,
        // and newlines.
        let mut snap = TraceSnapshot::default();
        snap.gauges
            .insert("queue.depth".into(), GaugeStat { last: 2.0, min: 0.0, max: 4.0, sets: 3 });
        snap.hists.insert(
            "eval wall".into(),
            HistStat { count: 4, sum: 22, buckets: vec![(0, 1), (3, 3)] },
        );
        let hostile = "j\\1 \"q\"\nend";
        let text = prometheus_labeled(&snap, &[("job", hostile), ("bench", "ep")]);
        let esc = "j\\\\1 \\\"q\\\"\\nend";
        // Gauge: the bare series and its _min/_max companions all carry
        // the escaped label set.
        assert!(
            text.contains(&format!("craft_queue_depth{{job=\"{esc}\",bench=\"ep\"}} 2")),
            "{text}"
        );
        assert!(
            text.contains(&format!("craft_queue_depth_min{{job=\"{esc}\",bench=\"ep\"}} 0")),
            "{text}"
        );
        assert!(
            text.contains(&format!("craft_queue_depth_max{{job=\"{esc}\",bench=\"ep\"}} 4")),
            "{text}"
        );
        // Histogram: every bucket (le merged before the constant set),
        // plus _sum and _count.
        assert!(
            text.contains(&format!(
                "craft_eval_wall_bucket{{le=\"0\",job=\"{esc}\",bench=\"ep\"}} 1"
            )),
            "{text}"
        );
        assert!(
            text.contains(&format!(
                "craft_eval_wall_bucket{{le=\"+Inf\",job=\"{esc}\",bench=\"ep\"}} 4"
            )),
            "{text}"
        );
        assert!(
            text.contains(&format!("craft_eval_wall_sum{{job=\"{esc}\",bench=\"ep\"}} 22")),
            "{text}"
        );
        assert!(
            text.contains(&format!("craft_eval_wall_count{{job=\"{esc}\",bench=\"ep\"}} 4")),
            "{text}"
        );
        // No raw newline survives inside any label set, and every line
        // still splits into `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("line has a value");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok() || value == "+Inf", "bad value {value:?}");
            if let Some(open) = line.find('{') {
                assert!(!line[open..].contains('\n'));
            }
        }
    }

    #[test]
    fn folded_exclusive_time_on_deep_nesting() {
        // search(100) > bfs(80) > eval(50) > run(30) > step(10), plus a
        // sibling leaf under eval — four levels of real nesting.
        let mut snap = TraceSnapshot::default();
        for (id, parent, name, dur) in [
            (1u64, None, "search", 100u64),
            (2, Some(1), "bfs", 80),
            (3, Some(2), "eval", 50),
            (4, Some(3), "run", 30),
            (5, Some(4), "step", 10),
            (6, Some(3), "verify", 5),
        ] {
            snap.spans.push(SpanRecord {
                id,
                parent,
                name: name.into(),
                thread: 0,
                start_us: id,
                dur_us: dur,
            });
        }
        let text = folded(&snap);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.contains(&"search 20"), "{text}");
        assert!(lines.contains(&"search;bfs 30"), "{text}");
        assert!(lines.contains(&"search;bfs;eval 15"), "{text}"); // 50 - 30 - 5
        assert!(lines.contains(&"search;bfs;eval;run 20"), "{text}");
        assert!(lines.contains(&"search;bfs;eval;run;step 10"), "{text}");
        assert!(lines.contains(&"search;bfs;eval;verify 5"), "{text}");
        // Exclusive times at every depth re-sum to the root duration.
        let total: u64 =
            lines.iter().map(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn folded_stacks_attribute_exclusive_time() {
        let text = folded(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.contains(&"search 20"), "{text}");
        assert!(lines.contains(&"search;phase:bfs 20"), "{text}");
        assert!(lines.contains(&"search;phase:bfs;eval 40"), "{text}");
        assert!(lines.contains(&"search;phase:union 20"), "{text}");
        // flamegraph-parseable: every line is `stack <int>` with no
        // whitespace inside the stack.
        for line in lines {
            let (stack, v) = line.rsplit_once(' ').unwrap();
            assert!(!stack.contains(char::is_whitespace));
            v.parse::<u64>().unwrap();
        }
    }
}
