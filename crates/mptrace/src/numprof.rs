//! Per-instruction numerical-health profiling via the const-gated
//! [`NumObserver`] hook.
//!
//! [`NumProfiler`] classifies every scalar FP result and reduced-format
//! quantize a run produces ([`fpvm::Vm::run_image_numhealth`]) into the
//! events that make a mixed-precision result trustworthy — or not:
//! NaN produced, Inf produced, underflow to zero, subnormal results,
//! and per-format quantize saturation/flush. Because the hook is gated
//! on an associated `const`, the unarmed loop monomorphizes without any
//! trace of it — zero cost when disabled, enforced bit-identical by
//! `tests/numhealth_differential.rs`.
//!
//! [`NumProfiler::fold_into`] turns the accumulators into the `fp.*`
//! counter family of a [`Tracer`](crate::Tracer): totals (`fp.nan`,
//! `fp.sat.bf16`, …) plus per-instruction series (`fp.nan.i12`,
//! `fp.sat.bf16.i12`, …) that the Prometheus sink renders with real
//! `insn`/`format` labels.

use crate::Tracer;
use fpvm::exec::NumObserver;
use fpvm::InsnId;
use mpfmt::Format;
use std::collections::BTreeMap;

/// One instruction's scalar-result event accumulators.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NumEvents {
    /// Scalar FP results observed at this instruction.
    pub total: u64,
    /// Results that were NaN while no operand was (NaN *produced*, not
    /// propagated).
    pub nan: u64,
    /// Infinite results from finite operands (overflow or pole).
    pub inf: u64,
    /// Exact-zero results from two nonzero operands: gradual underflow
    /// hitting zero, or exact cancellation.
    pub underflow: u64,
    /// Subnormal results, classified at the operation's native width
    /// (an `f32` subnormal counts even though it widens to a normal
    /// `f64`).
    pub subnormal: u64,
}

impl NumEvents {
    /// True when no abnormal event was recorded.
    pub fn is_clean(&self) -> bool {
        self.nan == 0 && self.inf == 0 && self.underflow == 0 && self.subnormal == 0
    }
}

/// One `(instruction, reduced format)` pair's quantize accumulators.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuantEvents {
    /// Quantize operations observed.
    pub total: u64,
    /// Finite payloads that saturated to the format's infinity.
    pub sat: u64,
    /// Nonzero payloads flushed to zero (below the format's smallest
    /// subnormal).
    pub flush: u64,
}

/// Dense per-instruction numerical-health accumulators, plus sparse
/// per-`(instruction, format)` quantize accumulators.
///
/// Mirrors [`InsnProfiler`](crate::profiler::InsnProfiler): the slot
/// vector carries one discard bucket past the id bound, and the hooks
/// clamp into it instead of branching on the sentinel id.
#[derive(Debug, Clone, Default)]
pub struct NumProfiler {
    slots: Vec<NumEvents>,
    quant: BTreeMap<(u32, (u8, u8)), QuantEvents>,
}

impl NumProfiler {
    /// A profiler sized for a program with `insn_id_bound() == bound`.
    pub fn new(bound: usize) -> NumProfiler {
        NumProfiler { slots: vec![NumEvents::default(); bound + 1], quant: BTreeMap::new() }
    }

    /// Ids strictly below this are attributed; the rest are discarded.
    fn bound(&self) -> usize {
        self.slots.len().saturating_sub(1)
    }

    /// The scalar-result events attributed to instruction `id`
    /// (all-zero when out of range).
    pub fn events(&self, id: u32) -> NumEvents {
        if (id as usize) < self.bound() {
            self.slots[id as usize]
        } else {
            NumEvents::default()
        }
    }

    /// Iterate `(id, events)` over every instruction with any scalar
    /// result attributed.
    pub fn iter(&self) -> impl Iterator<Item = (u32, NumEvents)> + '_ {
        self.slots[..self.bound()]
            .iter()
            .enumerate()
            .filter(|(_, s)| s.total != 0)
            .map(|(i, &s)| (i as u32, s))
    }

    /// Iterate `(id, format, events)` over every `(instruction, reduced
    /// format)` pair with any quantize attributed.
    pub fn iter_quant(&self) -> impl Iterator<Item = (u32, Format, QuantEvents)> + '_ {
        self.quant.iter().map(|(&(i, (m, e)), &q)| {
            let fmt = match (m, e) {
                (10, 5) => Format::Half,
                (7, 8) => Format::Bf16,
                _ => Format::Custom { mantissa_bits: m, exp_bits: e },
            };
            (i, fmt, q)
        })
    }

    /// Re-attribute the accumulators through an id map (instrumented
    /// snippet insn → origin insn), mirroring
    /// [`InsnProfiler::fold_into`](crate::profiler::InsnProfiler::fold_into):
    /// every id's events merge into `map(id)`'s slot of a profiler sized
    /// for `bound`.
    pub fn fold_ids(&self, bound: usize, map: impl Fn(u32) -> u32) -> NumProfiler {
        let mut out = NumProfiler::new(bound);
        for (i, s) in self.iter() {
            let j = (map(i) as usize).min(out.slots.len() - 1);
            let d = &mut out.slots[j];
            d.total += s.total;
            d.nan += s.nan;
            d.inf += s.inf;
            d.underflow += s.underflow;
            d.subnormal += s.subnormal;
        }
        for (&(i, fe), &q) in &self.quant {
            let j = map(i);
            if (j as usize) < out.bound() {
                let d = out.quant.entry((j, fe)).or_default();
                d.total += q.total;
                d.sat += q.sat;
                d.flush += q.flush;
            }
        }
        out
    }

    /// Fold the accumulators into `t` as the `fp.*` counter family:
    /// family totals (`fp.result`, `fp.nan`, `fp.inf`, `fp.underflow`,
    /// `fp.subnormal`, `fp.quantize.<fmt>`, `fp.sat.<fmt>`,
    /// `fp.flush.<fmt>`), per-instruction series with an `.i<id>`
    /// suffix for every abnormal event, and one histogram
    /// (`fp.insn_events`) of abnormal-event counts per affected
    /// instruction.
    pub fn fold_into(&self, t: &Tracer) {
        let mut totals = NumEvents::default();
        for (i, s) in self.iter() {
            totals.total += s.total;
            totals.nan += s.nan;
            totals.inf += s.inf;
            totals.underflow += s.underflow;
            totals.subnormal += s.subnormal;
            for (name, n) in [
                ("fp.nan", s.nan),
                ("fp.inf", s.inf),
                ("fp.underflow", s.underflow),
                ("fp.subnormal", s.subnormal),
            ] {
                if n > 0 {
                    t.incr(&format!("{name}.i{i}"), n);
                }
            }
            let abnormal = s.nan + s.inf + s.underflow + s.subnormal;
            if abnormal > 0 {
                t.observe("fp.insn_events", abnormal);
            }
        }
        for (name, n) in [
            ("fp.result", totals.total),
            ("fp.nan", totals.nan),
            ("fp.inf", totals.inf),
            ("fp.underflow", totals.underflow),
            ("fp.subnormal", totals.subnormal),
        ] {
            if n > 0 {
                t.incr(name, n);
            }
        }
        for (i, fmt, q) in self.iter_quant() {
            t.incr(&format!("fp.quantize.{fmt}"), q.total);
            if q.sat > 0 {
                t.incr(&format!("fp.sat.{fmt}"), q.sat);
                t.incr(&format!("fp.sat.{fmt}.i{i}"), q.sat);
            }
            if q.flush > 0 {
                t.incr(&format!("fp.flush.{fmt}"), q.flush);
                t.incr(&format!("fp.flush.{fmt}.i{i}"), q.flush);
            }
        }
    }

    #[inline(always)]
    fn classify(
        s: &mut NumEvents,
        a_nan: bool,
        b_nan: bool,
        zero_ops: bool,
        fin_ops: bool,
        r: f64,
    ) {
        s.total += 1;
        if r.is_nan() {
            s.nan += (!a_nan && !b_nan) as u64;
            return;
        }
        s.inf += (r.is_infinite() && fin_ops) as u64;
        s.underflow += (r == 0.0 && !zero_ops && fin_ops) as u64;
    }
}

impl NumObserver for NumProfiler {
    const ENABLED: bool = true;

    #[inline(always)]
    fn fp_result_f64(&mut self, insn: InsnId, a: f64, b: f64, r: f64) {
        if self.slots.is_empty() {
            return;
        }
        let i = (insn.0 as usize).min(self.slots.len() - 1);
        let s = &mut self.slots[i];
        Self::classify(
            s,
            a.is_nan(),
            b.is_nan(),
            a == 0.0 || b == 0.0,
            a.is_finite() && b.is_finite(),
            r,
        );
        s.subnormal += r.is_subnormal() as u64;
    }

    #[inline(always)]
    fn fp_result_f32(&mut self, insn: InsnId, a: f32, b: f32, r: f32) {
        if self.slots.is_empty() {
            return;
        }
        let i = (insn.0 as usize).min(self.slots.len() - 1);
        let s = &mut self.slots[i];
        Self::classify(
            s,
            a.is_nan(),
            b.is_nan(),
            a == 0.0 || b == 0.0,
            a.is_finite() && b.is_finite(),
            r as f64,
        );
        // Subnormality is width-dependent: classify before widening.
        s.subnormal += r.is_subnormal() as u64;
    }

    #[inline(always)]
    fn quantize(&mut self, insn: InsnId, mant: u8, exp: u8, before: u32, after: u32) {
        if self.slots.is_empty() || insn.0 as usize >= self.bound() {
            return;
        }
        let q = self.quant.entry((insn.0, (mant, exp))).or_default();
        q.total += 1;
        let (bf, af) = (f32::from_bits(before), f32::from_bits(after));
        q.sat += (af.is_infinite() && bf.is_finite()) as u64;
        q.flush += (af == 0.0 && bf != 0.0 && !bf.is_nan()) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_results_classify_produced_events_only() {
        let mut p = NumProfiler::new(4);
        // NaN produced (0/0-style) vs NaN propagated.
        p.fp_result_f64(InsnId(0), 0.0, 0.0, f64::NAN);
        p.fp_result_f64(InsnId(0), f64::NAN, 1.0, f64::NAN);
        // Inf produced vs propagated.
        p.fp_result_f64(InsnId(1), 1.0e308, 1.0e308, f64::INFINITY);
        p.fp_result_f64(InsnId(1), f64::INFINITY, 2.0, f64::INFINITY);
        // Underflow to zero vs an operand that was already zero.
        p.fp_result_f64(InsnId(2), 1.0e-200, 1.0e-200, 0.0);
        p.fp_result_f64(InsnId(2), 0.0, 5.0, 0.0);
        // Subnormal result.
        p.fp_result_f64(InsnId(3), 1.0e-160, 1.0e-160, 1.0e-320);
        let (e0, e1, e2, e3) = (p.events(0), p.events(1), p.events(2), p.events(3));
        assert_eq!((e0.nan, e0.total), (1, 2));
        assert_eq!((e1.inf, e1.total), (1, 2));
        assert_eq!((e2.underflow, e2.total), (1, 2));
        assert_eq!((e3.subnormal, e3.total), (1, 1));
        assert!(!e3.is_clean() && p.events(99).is_clean());
    }

    #[test]
    fn f32_subnormals_classify_at_native_width() {
        let mut p = NumProfiler::new(2);
        // 1e-40 is subnormal in f32 but normal once widened to f64.
        p.fp_result_f32(InsnId(0), 1.0e-20, 1.0e-20, 1.0e-40);
        assert_eq!(p.events(0).subnormal, 1);
        assert_eq!(p.events(0).underflow, 0);
    }

    #[test]
    fn quantize_counts_saturation_and_flush_per_format() {
        let mut p = NumProfiler::new(2);
        let sat = Format::Half.quantize_bits(1.0e6f32.to_bits());
        p.quantize(InsnId(0), 10, 5, 1.0e6f32.to_bits(), sat);
        let flush = Format::Half.quantize_bits(1.0e-30f32.to_bits());
        p.quantize(InsnId(0), 10, 5, 1.0e-30f32.to_bits(), flush);
        p.quantize(InsnId(0), 10, 5, 1.5f32.to_bits(), 1.5f32.to_bits());
        let all: Vec<_> = p.iter_quant().collect();
        assert_eq!(all.len(), 1);
        let (i, fmt, q) = all[0];
        assert_eq!((i, fmt), (0, Format::Half));
        assert_eq!((q.total, q.sat, q.flush), (3, 1, 1));
    }

    #[test]
    fn fold_ids_reattributes_snippet_events_to_origins() {
        let mut p = NumProfiler::new(8);
        p.fp_result_f64(InsnId(5), 0.0, 0.0, f64::NAN);
        p.fp_result_f64(InsnId(6), 1.0e308, 1.0e308, f64::INFINITY);
        let sat = Format::Half.quantize_bits(1.0e6f32.to_bits());
        p.quantize(InsnId(6), 10, 5, 1.0e6f32.to_bits(), sat);
        // Snippet insns 5 and 6 both expand origin insn 2.
        let folded = p.fold_ids(4, |i| if i >= 5 { 2 } else { i });
        let e = folded.events(2);
        assert_eq!((e.nan, e.inf, e.total), (1, 1, 2));
        let all: Vec<_> = folded.iter_quant().collect();
        assert_eq!(all.len(), 1);
        assert_eq!((all[0].0, all[0].1), (2, Format::Half));
    }

    #[test]
    fn fold_into_emits_fp_counter_family() {
        let mut p = NumProfiler::new(4);
        p.fp_result_f64(InsnId(2), 0.0, 0.0, f64::NAN);
        p.fp_result_f64(InsnId(2), 1.0, 1.0, 2.0);
        let sat = Format::Bf16.quantize_bits(f32::MAX.to_bits());
        p.quantize(InsnId(3), 7, 8, f32::MAX.to_bits(), sat);
        let t = Tracer::new();
        p.fold_into(&t);
        let snap = t.snapshot().to_jsonl();
        for needle in [
            "fp.result",
            "fp.nan",
            "fp.nan.i2",
            "fp.quantize.bf16",
            "fp.sat.bf16.i3",
            "fp.sat.bf16",
        ] {
            assert!(snap.contains(needle), "missing {needle} in {snap}");
        }
        assert!(!snap.contains("fp.inf"), "clean families must not be emitted: {snap}");
    }
}
