//! Concurrent writer/reader drill for the tolerant JSONL readers: one
//! thread force-emits live-stream records while others re-read the
//! growing file the way real consumers do — `LiveLog::parse_tolerant`
//! re-reads (craft watch's old mode, `craft report` on a crashed run)
//! and a byte-offset `LiveTail` (craft watch --follow, craftd's
//! `GET /jobs/<id>/live`). Every successful read must be a consistent
//! prefix of the stream: records in seq order with no gaps, never a
//! torn record surfaced as data.

use mptrace::stream::{LiveLog, LiveTail, Progress, StreamOptions, StreamSink};
use mptrace::Tracer;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const EMITS: u64 = 200;

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("mptrace-concurrent-{tag}-{}.jsonl", std::process::id()))
}

/// Seqs of a folded log must be `1..=n` with no gaps: a reader that
/// ever observes a gap has treated a torn write as a whole record.
fn assert_prefix(log: &LiveLog, context: &str) {
    let mut expect = 1u64;
    let mut progress = log.progress.iter().map(|p| p.seq).peekable();
    let mut deltas = log.deltas.iter().map(|d| d.seq).peekable();
    // Progress and delta records share one seq counter; each emission
    // writes both, so every seq appears exactly once in each vec.
    while progress.peek().is_some() || deltas.peek().is_some() {
        assert_eq!(progress.next(), Some(expect), "{context}: progress seq gap at {expect}");
        assert_eq!(deltas.next(), Some(expect), "{context}: delta seq gap at {expect}");
        expect += 1;
    }
}

#[test]
fn tolerant_rereads_always_see_a_consistent_prefix() {
    let path = temp_path("reread");
    let tracer = Tracer::new();
    let sink = StreamSink::to_file(&path, &tracer, StreamOptions::default()).unwrap();

    let done = Arc::new(AtomicBool::new(false));
    let reader_done = Arc::clone(&done);
    let reader_path = path.clone();
    let reader = std::thread::spawn(move || {
        let mut reads = 0usize;
        let mut max_seen = 0usize;
        while !reader_done.load(Ordering::SeqCst) {
            // The file may not have its meta line yet; only a complete
            // header makes a parseable stream.
            if let Ok(log) = LiveLog::from_file(&reader_path) {
                assert_prefix(&log, "re-read");
                // Re-reads of a growing file can only ever see more.
                assert!(log.progress.len() >= max_seen, "stream shrank between reads");
                max_seen = log.progress.len();
                reads += 1;
            }
            std::thread::yield_now();
        }
        reads
    });

    for i in 0..EMITS {
        tracer.incr("drill.emitted", 1);
        sink.force(&Progress {
            phase: if i + 1 == EMITS { "done".into() } else { "bfs".into() },
            done: i + 1,
            total_estimate: EMITS,
            ..Default::default()
        });
    }
    done.store(true, Ordering::SeqCst);
    let reads = reader.join().unwrap();
    assert!(reads > 0, "reader never managed a successful parse");

    // With the writer finished every record is complete: the final read
    // holds the whole stream, warning-free, and the folded counter
    // equals what the writer emitted.
    let log = LiveLog::from_file(&path).unwrap();
    assert!(log.warning.is_none(), "settled file still torn: {:?}", log.warning);
    assert_eq!(log.progress.len() as u64, EMITS);
    assert_prefix(&log, "final");
    assert_eq!(log.final_snapshot().counters.get("drill.emitted"), Some(&EMITS));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn live_tail_follows_a_concurrent_writer_without_tearing() {
    let path = temp_path("tail");
    let tracer = Tracer::new();
    let sink = StreamSink::to_file(&path, &tracer, StreamOptions::default()).unwrap();

    let done = Arc::new(AtomicBool::new(false));
    let tail_done = Arc::clone(&done);
    let tail_path = path.clone();
    let follower = std::thread::spawn(move || {
        let mut tail = LiveTail::new(&tail_path);
        let mut raw = String::new();
        while !tail_done.load(Ordering::SeqCst) {
            tail.poll().expect("tail poll on a live writer");
            raw.push_str(&tail.take_raw());
            assert_prefix(tail.log(), "tail");
            std::thread::yield_now();
        }
        // One final poll picks up whatever landed after the last loop.
        tail.poll().expect("final tail poll");
        raw.push_str(&tail.take_raw());
        assert_prefix(tail.log(), "tail-final");
        (tail.log().progress.len() as u64, raw)
    });

    for i in 0..EMITS {
        tracer.incr("drill.emitted", 1);
        sink.force(&Progress { phase: "bfs".into(), done: i + 1, ..Default::default() });
    }
    done.store(true, Ordering::SeqCst);
    let (seen, raw) = follower.join().unwrap();
    assert_eq!(seen, EMITS, "tail missed records");

    // The raw lines the tail handed out (what craftd forwards to live
    // followers) are exactly the file's complete lines: byte-identical,
    // so a follower's copy folds like the original.
    let on_disk = std::fs::read_to_string(&path).unwrap();
    assert_eq!(raw, on_disk);
    let folded = LiveLog::parse_tolerant(&raw).unwrap();
    assert!(folded.warning.is_none());
    assert_eq!(folded.final_snapshot().counters.get("drill.emitted"), Some(&EMITS));
    let _ = std::fs::remove_file(&path);
}
