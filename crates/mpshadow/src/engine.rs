//! The shadow-value engine: an [`ExecObserver`] that mirrors every
//! scalar-double operation in single precision.
//!
//! ## Shadow state
//!
//! * one `f32` shadow per XMM register's scalar (low-64) slot, with a
//!   validity bitmask;
//! * one `f32` shadow per 64-bit memory slot the run touches, keyed by
//!   absolute address.
//!
//! A shadow is **seeded lazily**: the first time an untracked operand is
//! consumed, its shadow is the primary double truncated to `f32` — from
//! then on the twin evolves through genuine single-precision arithmetic.
//! Any write the engine cannot track as a scalar double (low-32 writes,
//! packed results, 128-bit moves, integer stores) *invalidates* the
//! shadows it overlaps, so a stale twin is never consumed.
//!
//! ## What is recorded
//!
//! After every scalar-double arithmetic, square-root, or math-library
//! instruction, the engine records the relative divergence between the
//! shadow result and the primary result — `|s − r| / max(|r|, 1)`, the
//! same metric the workloads' verification routines use, clamped to
//! `f64::MAX` when non-finite. Additive operations additionally run
//! exponent-drop cancellation detection: if the result's binary exponent
//! sits ≥ 24 bits (the full `f32` significand) below the larger
//! operand's, or nonzero operands produce an exact zero, the instruction
//! logs one catastrophic-cancellation event.

use crate::profile::{InsnSensitivity, SensitivityProfile};
use fpvm::exec::{ExecObserver, FpEvent, FpLocV};
use fpvm::isa::{FpAluOp, InsnId};
use fpvm::Vm;
use std::collections::HashMap;

/// Shadow-value execution engine; attach with
/// [`Vm::run_image_observed`](fpvm::Vm::run_image_observed).
#[derive(Debug)]
pub struct ShadowEngine {
    /// Per-register shadow of the scalar (low-64) slot.
    reg: [f32; 16],
    /// Validity bitmask for `reg`.
    reg_ok: u16,
    /// Shadows of 64-bit memory slots, by absolute address.
    mem: HashMap<u64, f32>,
    /// Per-instruction statistics, indexed by instruction id.
    stats: Vec<InsnSensitivity>,
}

/// Relative divergence of a shadow result from the primary result:
/// `|s − r| / max(|r|, 1)` (the workloads' verification metric), with
/// non-finite divergence clamped to `f64::MAX` so sums stay orderable.
fn divergence(shadow: f64, primary: f64) -> f64 {
    let e = (shadow - primary).abs() / primary.abs().max(1.0);
    if e.is_finite() {
        e
    } else {
        f64::MAX
    }
}

#[inline]
fn biased_exp(x: f64) -> i64 {
    ((x.to_bits() >> 52) & 0x7ff) as i64
}

/// Is `x` faithfully representable in `f32` — i.e. does truncation land
/// on a *normal* `f32` (or preserve an exact zero)? When a primary
/// operand under- or overflows the `f32` range — including the
/// subnormal range, where `f32` keeps only a few significand bits — the
/// one-step local model's *input* is already garbage, and its output
/// says nothing about what a replaced run (whose trajectory
/// self-stabilizes at `f32` scale) would actually compute — so such
/// samples must not feed the local-error statistic.
fn faithful(x: f64) -> bool {
    let t = x as f32;
    t.is_normal() || (t == 0.0 && x == 0.0)
}

/// Exponent-drop cancellation test for `r = a ± b`: true when finite
/// nonzero operands produce a result whose binary exponent is at least
/// 24 bits — the full `f32` significand — below the larger operand's,
/// or an exact zero.
fn cancellation(a: f64, b: f64, r: f64) -> bool {
    if a == 0.0 || b == 0.0 || !a.is_finite() || !b.is_finite() {
        return false;
    }
    if r == 0.0 {
        return true;
    }
    if !r.is_finite() {
        return false;
    }
    biased_exp(a).max(biased_exp(b)) - biased_exp(r) >= 24
}

impl ShadowEngine {
    /// Create an engine for a program with the given instruction-id
    /// bound ([`fpvm::Program::insn_id_bound`]).
    pub fn new(insn_bound: usize) -> Self {
        ShadowEngine {
            reg: [0.0; 16],
            reg_ok: 0,
            mem: HashMap::new(),
            stats: vec![InsnSensitivity::default(); insn_bound],
        }
    }

    /// Consume the engine into its [`SensitivityProfile`].
    pub fn into_profile(self) -> SensitivityProfile {
        SensitivityProfile {
            insns: self
                .stats
                .iter()
                .enumerate()
                .filter(|(_, s)| s.count > 0 || s.cancels > 0)
                .map(|(i, s)| (i as u32, *s))
                .collect(),
        }
    }

    /// Number of memory slots currently shadowed (diagnostics).
    pub fn tracked_mem_slots(&self) -> usize {
        self.mem.len()
    }

    fn reg_shadow(&mut self, x: u8, primary: f64) -> f32 {
        let i = x as usize;
        if self.reg_ok & (1 << i) == 0 {
            self.reg[i] = primary as f32;
            self.reg_ok |= 1 << i;
        }
        self.reg[i]
    }

    fn operand(&mut self, loc: FpLocV, primary: f64) -> f32 {
        match loc {
            FpLocV::Reg(x) => self.reg_shadow(x, primary),
            FpLocV::Mem(a) => *self.mem.entry(a).or_insert(primary as f32),
        }
    }

    fn set_reg(&mut self, x: u8, v: f32) {
        self.reg[x as usize] = v;
        self.reg_ok |= 1 << x;
    }

    /// Drop every tracked slot overlapping `width` bytes at `a`
    /// (tracked slots are 8 bytes wide, so the scan extends 7 bytes
    /// below the write).
    fn clobber_mem(&mut self, a: u64, width: u64) {
        if self.mem.is_empty() {
            return;
        }
        for k in a.saturating_sub(7)..a.saturating_add(width) {
            self.mem.remove(&k);
        }
    }

    fn write(&mut self, loc: FpLocV, v: f32) {
        match loc {
            FpLocV::Reg(x) => self.set_reg(x, v),
            FpLocV::Mem(a) => {
                self.clobber_mem(a, 8);
                self.mem.insert(a, v);
            }
        }
    }

    /// Record one shadowed result: `shadow` is the propagated twin,
    /// `local` the result of the same operation on freshly-truncated
    /// primary operands (isolating this instruction's own contribution),
    /// or `None` when an operand was outside the `f32` range and the
    /// local model therefore has nothing valid to say. `range` holds the
    /// primary operands and result whose magnitudes feed the
    /// per-instruction range envelope (the input to `mpfmt`'s demotion
    /// guards).
    fn record(
        &mut self,
        insn: InsnId,
        primary: f64,
        shadow: f32,
        local: Option<f32>,
        cancel: bool,
        range: &[f64],
    ) {
        let s = &mut self.stats[insn.0 as usize];
        s.count += 1;
        let rel = divergence(shadow as f64, primary);
        s.sum_rel = (s.sum_rel + rel).min(f64::MAX);
        s.max_rel = s.max_rel.max(rel);
        if let Some(local) = local {
            s.max_local = s.max_local.max(divergence(local as f64, primary));
        }
        s.cancels += cancel as u64;
        for &x in range {
            s.observe_range(x);
        }
    }
}

impl ExecObserver for ShadowEngine {
    const ENABLED: bool = true;

    fn trace(&mut self, ev: &FpEvent) {
        match *ev {
            FpEvent::Arith64 { insn, op, dst, src, a, b, r } => {
                let sa = self.reg_shadow(dst, a);
                let sb = self.operand(src, b);
                let sr = Vm::fp_alu_f32(op, sa, sb);
                self.set_reg(dst, sr);
                let lr =
                    (faithful(a) && faithful(b)).then(|| Vm::fp_alu_f32(op, a as f32, b as f32));
                let cancel = matches!(op, FpAluOp::Add | FpAluOp::Sub) && cancellation(a, b, r);
                self.record(insn, r, sr, lr, cancel, &[a, b, r]);
            }
            FpEvent::Sqrt64 { insn, dst, src, b, r } => {
                let sr = self.operand(src, b).sqrt();
                self.set_reg(dst, sr);
                self.record(insn, r, sr, faithful(b).then(|| (b as f32).sqrt()), false, &[b, r]);
            }
            FpEvent::Math64 { insn, fun, dst, src, b, r } => {
                let sr = Vm::math_f32(fun, self.operand(src, b));
                self.set_reg(dst, sr);
                self.record(
                    insn,
                    r,
                    sr,
                    faithful(b).then(|| Vm::math_f32(fun, b as f32)),
                    false,
                    &[b, r],
                );
            }
            // Conversions seed the shadow exactly: the double result of a
            // widen is representable in f32, and an i64→f64 truncates the
            // same way the shadow's i64→f32 does relative to it.
            FpEvent::Widen64 { dst, value, .. } => self.set_reg(dst, value),
            FpEvent::Int64 { dst, v, .. } => self.set_reg(dst, v as f32),
            FpEvent::Mov64 { dst, src, bits } => {
                let s = match src {
                    FpLocV::Reg(x) => (self.reg_ok & (1 << x) != 0).then(|| self.reg[x as usize]),
                    FpLocV::Mem(a) => self.mem.get(&a).copied(),
                }
                .unwrap_or(f64::from_bits(bits) as f32);
                self.write(dst, s);
            }
            FpEvent::Clobber { loc, width } => match loc {
                FpLocV::Reg(x) => self.reg_ok &= !(1 << x),
                FpLocV::Mem(a) => self.clobber_mem(a, width as u64),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancellation_detects_exponent_drop() {
        // 1.0 + (-1.0 + 2^-30): drop of ~30 bits.
        let a = 1.0f64;
        let b = -1.0 + 2f64.powi(-30);
        assert!(cancellation(a, b, a + b));
        // benign addition: no drop
        assert!(!cancellation(1.0, 2.0, 3.0));
        // exact zero from nonzero operands
        assert!(cancellation(5.0, -5.0, 0.0));
        // zeros and non-finite operands never count
        assert!(!cancellation(0.0, 1.0, 1.0));
        assert!(!cancellation(f64::INFINITY, 1.0, f64::INFINITY));
    }

    #[test]
    fn divergence_matches_verification_metric_and_clamps() {
        assert_eq!(divergence(1.5, 1.0), 0.5);
        assert_eq!(divergence(3.0, 2.0), 0.5);
        assert_eq!(divergence(f64::NAN, 1.0), f64::MAX);
        assert_eq!(divergence(f64::INFINITY, 1.0), f64::MAX);
    }

    #[test]
    fn lazy_seed_then_track() {
        let mut e = ShadowEngine::new(4);
        // first use seeds from the primary
        let s = e.operand(FpLocV::Reg(3), 1.5);
        assert_eq!(s, 1.5f32);
        // engine-written values persist
        e.set_reg(3, 7.25);
        assert_eq!(e.operand(FpLocV::Reg(3), 999.0), 7.25);
        // clobber invalidates: next use re-seeds
        e.trace(&FpEvent::Clobber { loc: FpLocV::Reg(3), width: 4 });
        assert_eq!(e.operand(FpLocV::Reg(3), 2.0), 2.0f32);
    }

    #[test]
    fn arith_events_feed_the_range_envelope() {
        let mut e = ShadowEngine::new(2);
        for (a, b) in [(3.0f64, 4.0f64), (0.5, 0.0), (-2.0e4, 1.0)] {
            e.trace(&FpEvent::Arith64 {
                insn: InsnId(1),
                op: FpAluOp::Add,
                dst: 0,
                src: FpLocV::Reg(1),
                a,
                b,
                r: a + b,
            });
        }
        let p = e.into_profile();
        let s = p.get(InsnId(1)).unwrap();
        assert_eq!(s.max_abs, 2.0e4);
        assert_eq!(s.min_abs, 0.5); // zero operand does not set the minimum
    }

    #[test]
    fn mem_clobber_removes_overlapping_slots() {
        let mut e = ShadowEngine::new(1);
        e.write(FpLocV::Mem(64), 1.0);
        e.write(FpLocV::Mem(80), 2.0);
        assert_eq!(e.tracked_mem_slots(), 2);
        // a 4-byte write at 68 overlaps the slot at 64 but not 80
        e.trace(&FpEvent::Clobber { loc: FpLocV::Mem(68), width: 4 });
        assert_eq!(e.tracked_mem_slots(), 1);
        assert_eq!(e.operand(FpLocV::Mem(80), 0.0), 2.0);
    }
}
