//! # mpshadow — shadow-value runtime analysis
//!
//! The runtime-analysis half of the CRAFT system: run a program *once*
//! while maintaining, for every scalar-double register and memory slot
//! the run touches, a paired single-precision **shadow value** computed
//! by the same operations truncated to `f32`. Per instruction, the
//! divergence between the shadow twin and the primary double value is
//! accumulated into a [`SensitivityProfile`]:
//!
//! * maximum and mean relative divergence of the instruction's results,
//! * catastrophic-cancellation events (exponent-drop detection on
//!   additive operations),
//! * aggregates at any level of the same structure tree `mpconfig` uses.
//!
//! The engine attaches to the interpreter's pre-decoded fast path
//! through [`fpvm::ExecObserver`]; with no observer the fast path is
//! bit-identical and pays nothing (the hook is a compile-time constant).
//! The resulting profile is a search oracle: `mpsearch` can rank
//! configurations by low shadow error and prune configurations whose
//! shadow error already exceeds the verification threshold.
//!
//! ```no_run
//! # let prog: fpvm::Program = unimplemented!();
//! let report = mpshadow::shadow_run(&prog, fpvm::VmOptions::default());
//! for (id, s) in &report.profile.insns {
//!     println!("insn {id}: max_rel={} cancels={}", s.max_rel, s.cancels);
//! }
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod profile;

pub use engine::ShadowEngine;
pub use profile::{error_class, InsnSensitivity, SensitivityProfile};

use fpvm::{ExecImage, Program, RunOutcome, Vm, VmOptions};

/// The outcome of one shadowed run: the sensitivity profile and the
/// primary execution's (unmodified) outcome.
#[derive(Debug)]
pub struct ShadowReport {
    /// Per-instruction error statistics.
    pub profile: SensitivityProfile,
    /// The primary run's outcome, exactly as an unshadowed run would
    /// have produced it.
    pub outcome: RunOutcome,
}

/// Run `prog` once with the shadow engine attached and return the
/// sensitivity profile plus the primary outcome. Compiles a fresh
/// [`ExecImage`] under `opts.cost`.
pub fn shadow_run(prog: &Program, opts: VmOptions) -> ShadowReport {
    let image = ExecImage::compile(prog, &opts.cost);
    let mut engine = ShadowEngine::new(prog.insn_id_bound());
    let mut vm = Vm::new(prog, opts);
    let outcome = vm.run_image_observed(&image, &mut engine);
    ShadowReport { profile: engine.into_profile(), outcome }
}
