//! Sensitivity profiles: the persistent artifact of a shadowed run.
//!
//! A [`SensitivityProfile`] maps instruction ids to accumulated error
//! statistics and aggregates them at any level of the `mpconfig`
//! structure tree. It persists as line-oriented JSON (JSONL): one header
//! line followed by one line per instruction, hand-serialized (the
//! build is registry-free, so no serde) with floats printed in Rust's
//! shortest round-trip form — parsing a profile back yields an equal
//! value.

use fpvm::isa::InsnId;
use mpconfig::{NodeRef, StructureTree};
use std::collections::BTreeMap;
use std::io::Write;

/// Accumulated shadow-error statistics for one instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InsnSensitivity {
    /// Times the instruction produced a shadowed result.
    pub count: u64,
    /// Sum of relative divergences (clamped to `f64::MAX`).
    pub sum_rel: f64,
    /// Maximum relative divergence observed.
    pub max_rel: f64,
    /// Maximum *instruction-local* relative error: the result of the
    /// operation applied to the primary operands truncated to `f32`,
    /// against the primary result. Unlike [`max_rel`](Self::max_rel)
    /// this excludes error propagated from upstream truncations, so it
    /// isolates what replacing *this one instruction* would introduce —
    /// the quantity search pruning is allowed to act on.
    pub max_local: f64,
    /// Catastrophic-cancellation events (additive exponent drop ≥ 24
    /// bits).
    pub cancels: u64,
    /// Largest primary operand/result magnitude observed. Feeds the
    /// per-format range guards (`mpfmt::guard`) that decide whether a
    /// demotion below single can survive the format's dynamic range.
    pub max_abs: f64,
    /// Smallest *nonzero* primary operand/result magnitude observed;
    /// `f64::INFINITY` when only zeros (or nothing) were seen.
    pub min_abs: f64,
}

impl Default for InsnSensitivity {
    fn default() -> Self {
        InsnSensitivity {
            count: 0,
            sum_rel: 0.0,
            max_rel: 0.0,
            max_local: 0.0,
            cancels: 0,
            max_abs: 0.0,
            min_abs: f64::INFINITY,
        }
    }
}

impl InsnSensitivity {
    /// Mean relative divergence (0 when never executed).
    pub fn mean_rel(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_rel / self.count as f64
        }
    }

    fn absorb(&mut self, other: &InsnSensitivity) {
        self.count += other.count;
        self.sum_rel = (self.sum_rel + other.sum_rel).min(f64::MAX);
        self.max_rel = self.max_rel.max(other.max_rel);
        self.max_local = self.max_local.max(other.max_local);
        self.cancels += other.cancels;
        self.max_abs = self.max_abs.max(other.max_abs);
        self.min_abs = self.min_abs.min(other.min_abs);
    }

    /// Fold one primary magnitude into the range envelope (NaNs are
    /// skipped; zeros count toward `max_abs` only).
    pub fn observe_range(&mut self, x: f64) {
        let a = x.abs();
        if a.is_nan() {
            return;
        }
        if a > self.max_abs {
            self.max_abs = a;
        }
        if a > 0.0 && a < self.min_abs {
            self.min_abs = a;
        }
    }
}

/// Coarse error class of a relative divergence, for priority encoding:
/// `15` for no observed divergence (or none possible — the item never
/// executed), otherwise `clamp(⌊−log10(err)⌋, 0, 15)`. Higher class ⇒
/// smaller error ⇒ more likely to survive truncation.
pub fn error_class(err: f64) -> u64 {
    if err <= 0.0 {
        return 15;
    }
    let c = -err.log10();
    if c.is_nan() {
        return 0;
    }
    (c.floor() as i64).clamp(0, 15) as u64
}

/// Per-instruction shadow-error statistics of one run, keyed by
/// instruction id.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SensitivityProfile {
    /// Statistics for every instruction that produced at least one
    /// shadowed result (or cancellation event).
    pub insns: BTreeMap<u32, InsnSensitivity>,
}

impl SensitivityProfile {
    /// Statistics for one instruction, if it executed.
    pub fn get(&self, id: InsnId) -> Option<&InsnSensitivity> {
        self.insns.get(&id.0)
    }

    /// Number of instructions with recorded statistics.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Total cancellation events across the run.
    pub fn total_cancellations(&self) -> u64 {
        self.insns.values().map(|s| s.cancels).sum()
    }

    /// Worst-case (maximum) relative divergence over a set of
    /// instructions. Instructions with no recorded statistics never
    /// executed in the shadowed run and contribute zero — replacing them
    /// cannot move the observed outputs.
    pub fn max_rel_over(&self, ids: impl IntoIterator<Item = InsnId>) -> f64 {
        ids.into_iter().filter_map(|i| self.insns.get(&i.0)).fold(0.0f64, |m, s| m.max(s.max_rel))
    }

    /// Worst-case *instruction-local* relative error over a set of
    /// instructions (see [`InsnSensitivity::max_local`]); absent
    /// instructions contribute zero. This — not the propagated
    /// divergence — is the metric pruning decisions must use: propagated
    /// divergence reflects a run with *everything* truncated at once and
    /// wildly overestimates the error of replacing one unit.
    pub fn max_local_over(&self, ids: impl IntoIterator<Item = InsnId>) -> f64 {
        ids.into_iter().filter_map(|i| self.insns.get(&i.0)).fold(0.0f64, |m, s| m.max(s.max_local))
    }

    /// Observed magnitude envelope over a set of instructions, in the
    /// shape the per-format range guards consume. Instructions with no
    /// recorded statistics contribute nothing, so an unexecuted (or
    /// unprofiled) set yields the default envelope — which admits every
    /// demotion, preserving the try-it-and-verify behavior when no
    /// shadow data exists.
    pub fn range_over(&self, ids: impl IntoIterator<Item = InsnId>) -> mpfmt::guard::RangeObs {
        let mut obs = mpfmt::guard::RangeObs::default();
        for s in ids.into_iter().filter_map(|i| self.insns.get(&i.0)) {
            obs.merge(&mpfmt::guard::RangeObs { max_abs: s.max_abs, min_abs: s.min_abs });
        }
        obs
    }

    /// Aggregate statistics under one structure-tree node.
    pub fn aggregate_under(&self, tree: &StructureTree, node: NodeRef) -> InsnSensitivity {
        let mut agg = InsnSensitivity::default();
        for id in tree.insns_under(node) {
            if let Some(s) = self.insns.get(&id.0) {
                agg.absorb(s);
            }
        }
        agg
    }

    /// Per-block aggregates, keyed by the same structure tree `mpconfig`
    /// configurations use; blocks with no recorded statistics are
    /// skipped. Returned in tree order.
    pub fn block_aggregates(&self, tree: &StructureTree) -> Vec<(NodeRef, InsnSensitivity)> {
        let mut rows = Vec::new();
        for (mi, m) in tree.modules.iter().enumerate() {
            for (fi, f) in m.funcs.iter().enumerate() {
                for bi in 0..f.blocks.len() {
                    let node = NodeRef::Block(mi, fi, bi);
                    let agg = self.aggregate_under(tree, node);
                    if agg.count > 0 || agg.cancels > 0 {
                        rows.push((node, agg));
                    }
                }
            }
        }
        rows
    }

    /// Serialize to JSONL: a header line followed by one line per
    /// instruction. Floats use Rust's shortest exact round-trip form.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"type\":\"shadow_profile\",\"version\":1,\"insns\":{}}}\n",
            self.insns.len()
        ));
        for (id, s) in &self.insns {
            out.push_str(&format!(
                "{{\"type\":\"insn\",\"id\":{},\"count\":{},\"sum_rel\":{:?},\"max_rel\":{:?},\"max_local\":{:?},\"cancels\":{},\"max_abs\":{:?}",
                id, s.count, s.sum_rel, s.max_rel, s.max_local, s.cancels, s.max_abs
            ));
            // An all-zero (or empty) envelope has an infinite min_abs,
            // which JSON cannot express — omit the field and let the
            // parser restore the infinity default.
            if s.min_abs.is_finite() {
                out.push_str(&format!(",\"min_abs\":{:?}", s.min_abs));
            }
            out.push_str("}\n");
        }
        out
    }

    /// Write the JSONL form to a file.
    pub fn to_file(&self, path: &str) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_jsonl().as_bytes())
    }

    /// Parse a profile back from its JSONL form. Tolerates unknown
    /// fields; rejects structural damage (missing header, bad record
    /// count, malformed lines).
    pub fn parse(text: &str) -> Result<SensitivityProfile, String> {
        use mptrace::json::{self, Value};
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = json::parse(lines.next().ok_or("empty profile")?)?;
        if header.get("type").and_then(Value::as_str) != Some("shadow_profile") {
            return Err("not a shadow profile (bad header)".into());
        }
        let declared =
            header.get("insns").and_then(Value::as_f64).ok_or("header missing insn count")?;
        let mut insns = BTreeMap::new();
        for line in lines {
            let rec = json::parse(line)?;
            if rec.get("type").and_then(Value::as_str) != Some("insn") {
                return Err(format!("unexpected record type in {line:?}"));
            }
            let field = |k: &str| {
                rec.get(k)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("missing field {k} in {line:?}"))
            };
            // Range-envelope fields are optional: profiles written before
            // the precision lattice lack them, and their defaults (empty
            // envelope) admit every demotion.
            let opt = |k: &str, d: f64| rec.get(k).and_then(Value::as_f64).unwrap_or(d);
            insns.insert(
                field("id")? as u32,
                InsnSensitivity {
                    count: field("count")? as u64,
                    sum_rel: field("sum_rel")?,
                    max_rel: field("max_rel")?,
                    max_local: field("max_local")?,
                    cancels: field("cancels")? as u64,
                    max_abs: opt("max_abs", 0.0),
                    min_abs: opt("min_abs", f64::INFINITY),
                },
            );
        }
        if insns.len() as f64 != declared {
            return Err(format!("header declares {declared} instructions, found {}", insns.len()));
        }
        Ok(SensitivityProfile { insns })
    }

    /// [`SensitivityProfile::parse`], but tolerating a truncated
    /// **final** line from a crash-interrupted writer: the valid prefix
    /// is kept (with the header count relaxed to "at most declared")
    /// and a warning is returned. Any other damage remains a hard
    /// error, and strict [`SensitivityProfile::parse`] is unchanged.
    pub fn parse_tolerant(text: &str) -> Result<(SensitivityProfile, Option<String>), String> {
        match Self::parse(text) {
            Ok(p) => Ok((p, None)),
            Err(first_err) => {
                let kept = match text.trim_end_matches('\n').rfind('\n') {
                    Some(cut) => &text[..cut + 1],
                    None => return Err(first_err),
                };
                // Reparse the prefix, accepting the now-short record
                // count: a torn tail means "fewer records than declared",
                // never more.
                use mptrace::json::{self, Value};
                let header = json::parse(kept.lines().next().ok_or("empty profile")?)
                    .map_err(|_| first_err.clone())?;
                if header.get("type").and_then(Value::as_str) != Some("shadow_profile") {
                    return Err(first_err);
                }
                let declared =
                    header.get("insns").and_then(Value::as_f64).ok_or_else(|| first_err.clone())?;
                let mut relaxed: Vec<&str> = kept.lines().collect();
                let found = relaxed.len().saturating_sub(1);
                if found as f64 > declared {
                    return Err(first_err);
                }
                let fixed_header =
                    format!("{{\"type\":\"shadow_profile\",\"version\":1,\"insns\":{found}}}");
                relaxed[0] = &fixed_header;
                let p = Self::parse(&relaxed.join("\n")).map_err(|_| first_err)?;
                let lineno = kept.lines().count() + 1;
                Ok((
                    p,
                    Some(format!(
                        "line {lineno}: dropped truncated final record; \
                         keeping {found} of {declared} declared instruction(s)"
                    )),
                ))
            }
        }
    }

    /// Read and parse a profile file.
    pub fn from_file(path: &str) -> Result<SensitivityProfile, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Self::parse(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SensitivityProfile {
        let mut insns = BTreeMap::new();
        insns.insert(
            3,
            InsnSensitivity {
                count: 100,
                sum_rel: 1.25e-7,
                max_rel: 3.0e-8,
                max_local: 1.0e-8,
                cancels: 0,
                max_abs: 2.5e3,
                min_abs: 0.125,
            },
        );
        insns.insert(
            7,
            InsnSensitivity {
                count: 2,
                sum_rel: f64::MAX,
                max_rel: f64::MAX,
                max_local: 0.25,
                cancels: 2,
                // empty envelope: only zeros seen → min_abs stays infinite
                max_abs: 0.0,
                min_abs: f64::INFINITY,
            },
        );
        SensitivityProfile { insns }
    }

    #[test]
    fn jsonl_round_trip_is_exact() {
        let p = sample();
        assert_eq!(SensitivityProfile::parse(&p.to_jsonl()).unwrap(), p);
        // empty profile too
        let empty = SensitivityProfile::default();
        assert_eq!(SensitivityProfile::parse(&empty.to_jsonl()).unwrap(), empty);
    }

    #[test]
    fn parse_rejects_damage() {
        let p = sample().to_jsonl();
        assert!(SensitivityProfile::parse("").is_err());
        assert!(SensitivityProfile::parse("{\"type\":\"other\"}").is_err());
        // drop a record: count mismatch
        let truncated: Vec<&str> = p.lines().take(2).collect();
        assert!(SensitivityProfile::parse(&truncated.join("\n")).is_err());
    }

    #[test]
    fn tolerant_parse_recovers_truncated_profile() {
        let p = sample();
        let text = p.to_jsonl();
        // Clean input: no warning, identical value.
        let (back, warn) = SensitivityProfile::parse_tolerant(&text).unwrap();
        assert_eq!(back, p);
        assert!(warn.is_none());
        // Mid-record truncation of the final line: first record kept.
        let cut = &text[..text.len() - 20];
        let (back, warn) = SensitivityProfile::parse_tolerant(cut).unwrap();
        assert!(warn.unwrap().contains("truncated"));
        assert_eq!(back.insns.len(), 1);
        assert!(back.insns.contains_key(&3));
        // A foreign document is still rejected.
        assert!(SensitivityProfile::parse_tolerant("{\"type\":\"other\"}\njunk").is_err());
    }

    #[test]
    fn error_classes_order_by_magnitude() {
        assert_eq!(error_class(0.0), 15);
        assert_eq!(error_class(1e-20), 15);
        assert_eq!(error_class(1.5e-7), 6);
        assert_eq!(error_class(0.5), 0);
        assert_eq!(error_class(1e9), 0);
        assert_eq!(error_class(f64::MAX), 0);
    }

    #[test]
    fn max_rel_over_treats_missing_as_zero() {
        let p = sample();
        assert_eq!(p.max_rel_over([InsnId(99)]), 0.0);
        assert_eq!(p.max_rel_over([InsnId(3), InsnId(99)]), 3.0e-8);
        assert_eq!(p.max_rel_over([InsnId(3), InsnId(7)]), f64::MAX);
        assert_eq!(p.max_local_over([InsnId(3), InsnId(7)]), 0.25);
        assert_eq!(p.max_local_over([InsnId(99)]), 0.0);
    }

    #[test]
    fn legacy_profiles_without_range_fields_still_parse() {
        // A profile written before the precision lattice: no
        // max_abs/min_abs fields. It must parse with the empty-envelope
        // defaults, which admit every demotion.
        let text = "{\"type\":\"shadow_profile\",\"version\":1,\"insns\":1}\n\
                    {\"type\":\"insn\",\"id\":4,\"count\":9,\"sum_rel\":0.5,\
                    \"max_rel\":0.25,\"max_local\":0.125,\"cancels\":1}\n";
        let p = SensitivityProfile::parse(text).unwrap();
        let s = p.get(InsnId(4)).unwrap();
        assert_eq!(s.count, 9);
        assert_eq!(s.max_abs, 0.0);
        assert_eq!(s.min_abs, f64::INFINITY);
        let obs = p.range_over([InsnId(4)]);
        assert_eq!(obs, mpfmt::guard::RangeObs::default());
    }

    #[test]
    fn range_over_merges_envelopes() {
        let p = sample();
        let obs = p.range_over([InsnId(3), InsnId(7), InsnId(99)]);
        assert_eq!(obs.max_abs, 2.5e3);
        assert_eq!(obs.min_abs, 0.125);
        // missing instructions alone: the admit-everything default
        assert_eq!(p.range_over([InsnId(99)]), mpfmt::guard::RangeObs::default());
    }
}
