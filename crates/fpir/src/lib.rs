//! # fpir — the structured IR and compiler
//!
//! Workload kernels (the NAS analogues, AMG, the sparse LU solver) are
//! written against this IR and compiled down to `fpvm` machine programs.
//! The crate stands in for the Fortran/C compiler that produced the
//! paper's double-precision benchmark binaries, and additionally provides
//! the whole-program F32 lowering that models the paper's *manual
//! conversion* experiments (§3.1).

#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod softlibm;

pub use ast::*;
pub use compile::{compile, CompileOptions, FpWidth};
pub use softlibm::{install as install_softlibm, SoftLibm};
