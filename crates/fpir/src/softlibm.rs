//! A software math library written *in the IR*, the way real `libm`
//! implementations work: argument reduction, polynomial kernels, and
//! IEEE-754 **bit manipulation** (exponent assembly through integer
//! reinterpretation).
//!
//! The paper's §2.5 observes that "in many cases the implementations of
//! transcendental functions like sine, cosine, and logarithms contain
//! lookup routines or bitwise manipulation for speed" and that special
//! handling of these functions "improves performance and increases the
//! fraction of the instructions … that can be replaced with single
//! precision". This module exists to reproduce that effect: a workload
//! can be built either with precision-typed intrinsic instructions
//! ([`fpvm::isa::MathFun`], the "special handling") or with these
//! software routines, whose bit-twiddling internals resist replacement —
//! see the `abl_transcendental` bench.
//!
//! Accuracy targets are ~1e-9 relative (ample for the workload
//! tolerances), achieved with:
//!
//! * `exp`: `x = n·ln2 + r`, degree-10 Taylor on `|r| ≤ ln2/2`, and
//!   `2ⁿ` assembled by writing `(n + 1023) << 52` into a double's bits;
//! * `log`: exponent extracted from the bit pattern, mantissa reduced to
//!   `[1, 2)`, `atanh` series in `t = (m−1)/(m+1)` up to `t¹⁹`;
//! * `sin`: quadrant reduction by `π/2` with a double-double-ish split
//!   constant, degree-13/12 Taylor kernels for sine/cosine.

use crate::ast::*;

/// Handles to the declared software math functions.
#[derive(Debug, Clone, Copy)]
pub struct SoftLibm {
    /// `exp(x)`.
    pub exp: FnRef,
    /// `ln(x)` (x > 0; returns garbage for non-positive inputs).
    pub log: FnRef,
    /// `sin(x)`.
    pub sin: FnRef,
}

/// Declare and define the software math functions inside `ir`, in their
/// own `libm` module (so the search can toggle them as a unit, and so
/// they mirror an external shared library the binary rewriter can also
/// instrument — §2.4's "modified shared libraries").
pub fn install(ir: &mut IrProgram) -> SoftLibm {
    ir.module("libm");
    let exp = def_exp(ir);
    let log = def_log(ir);
    let sin = def_sin(ir);
    SoftLibm { exp, log, sin }
}

fn def_exp(ir: &mut IrProgram) -> FnRef {
    let (exp, args) = ir.declare("soft_exp", &[Ty::F64], Some(Ty::F64));
    let x = args[0];
    let n = ir.local_i(exp);
    let r = ir.local_f(exp);
    let p = ir.local_f(exp);
    let scale = ir.local_f(exp);
    const LN2: f64 = std::f64::consts::LN_2;
    const INV_LN2: f64 = std::f64::consts::LOG2_E;
    // Taylor coefficients 1/k! for k = 10, 9, …, 2 (Horner order).
    let coeffs: Vec<f64> =
        (2..=10u64).rev().map(|k| 1.0 / (2..=k).map(|j| j as f64).product::<f64>()).collect();
    let mut horner = f(coeffs[0]);
    for &c in &coeffs[1..] {
        horner = fadd(fmul(horner, v(r)), f(c));
    }
    // p = 1 + r + r²·(poly(r))
    let poly = fadd(fadd(fmul(fmul(horner, v(r)), v(r)), v(r)), f(1.0));
    ir.define(
        exp,
        vec![
            // n = round(x / ln2): truncate(x·1/ln2 + ±0.5)
            if_(
                cmp(Cc::Ge, v(x), f(0.0)),
                vec![set(n, ftoi(fadd(fmul(v(x), f(INV_LN2)), f(0.5))))],
                vec![set(n, ftoi(fsub(fmul(v(x), f(INV_LN2)), f(0.5))))],
            ),
            set(r, fsub(v(x), fmul(itof(v(n)), f(LN2)))),
            set(p, poly),
            // scale = 2^n, assembled from raw exponent bits — the
            // bit-manipulation step that breaks under blind conversion
            set(scale, bits_to_f(ishl(iadd(v(n), i(1023)), i(52)))),
            ret(fmul(v(p), v(scale))),
        ],
    );
    exp
}

fn def_log(ir: &mut IrProgram) -> FnRef {
    let (log, args) = ir.declare("soft_log", &[Ty::F64], Some(Ty::F64));
    let x = args[0];
    let bits = ir.local_i(log);
    let e = ir.local_i(log);
    let m = ir.local_f(log);
    let t = ir.local_f(log);
    let t2 = ir.local_f(log);
    let s = ir.local_f(log);
    const LN2: f64 = std::f64::consts::LN_2;
    // atanh series: ln m = 2(t + t³/3 + … + t¹⁹/19), t = (m−1)/(m+1)
    let mut series = f(1.0 / 19.0);
    for k in (1..=8).rev() {
        series = fadd(fmul(series, v(t2)), f(1.0 / (2 * k + 1) as f64));
    }
    ir.define(
        log,
        vec![
            set(bits, f_to_bits(v(x))),
            // exponent field minus the bias
            set(e, isub(iand(ishr(v(bits), i(52)), i(0x7FF)), i(1023))),
            // mantissa renormalized into [1, 2): overwrite the exponent
            // field with the bias
            set(
                m,
                bits_to_f(ior(iand(v(bits), i(0x000F_FFFF_FFFF_FFFF)), i(0x3FF0_0000_0000_0000))),
            ),
            set(t, fdiv(fsub(v(m), f(1.0)), fadd(v(m), f(1.0)))),
            set(t2, fmul(v(t), v(t))),
            // 2t · (1 + t²·series)
            set(s, fmul(fmul(f(2.0), v(t)), fadd(fmul(series, v(t2)), f(1.0)))),
            ret(fadd(v(s), fmul(itof(v(e)), f(LN2)))),
        ],
    );
    log
}

fn def_sin(ir: &mut IrProgram) -> FnRef {
    let (sin, args) = ir.declare("soft_sin", &[Ty::F64], Some(Ty::F64));
    let x = args[0];
    let k = ir.local_i(sin);
    let q = ir.local_i(sin);
    let r = ir.local_f(sin);
    let r2 = ir.local_f(sin);
    let kernel = ir.local_f(sin);
    let sign = ir.local_f(sin);
    // Two-word π/2 for Cody-Waite reduction; the high word is spelled out
    // so the hi/lo split is visible next to its low compensation term.
    #[allow(clippy::approx_constant)]
    const PIO2_HI: f64 = 1.570_796_326_794_896_6;
    const PIO2_LO: f64 = 6.123_233_995_736_766e-17;
    const INV_PIO2: f64 = std::f64::consts::FRAC_2_PI;
    // sine kernel: r·(1 − r²/3! + r⁴/5! − r⁶/7! + r⁸/9! − r¹⁰/11! + r¹²/13!)
    let sin_poly = {
        let cs = [
            1.0 / 6227020800.0, // 1/13!
            -1.0 / 39916800.0,  // −1/11!
            1.0 / 362880.0,     // 1/9!
            -1.0 / 5040.0,      // −1/7!
            1.0 / 120.0,        // 1/5!
            -1.0 / 6.0,         // −1/3!
        ];
        let mut h = f(cs[0]);
        for &c in &cs[1..] {
            h = fadd(fmul(h, v(r2)), f(c));
        }
        fadd(fmul(fmul(h, v(r2)), v(r)), v(r))
    };
    // cosine kernel: 1 − r²/2! + r⁴/4! − … + r¹²/12!
    let cos_poly = {
        let cs = [
            1.0 / 479001600.0, // 1/12!
            -1.0 / 3628800.0,  // −1/10!
            1.0 / 40320.0,     // 1/8!
            -1.0 / 720.0,      // −1/6!
            1.0 / 24.0,        // 1/4!
            -0.5,              // −1/2!
        ];
        let mut h = f(cs[0]);
        for &c in &cs[1..] {
            h = fadd(fmul(h, v(r2)), f(c));
        }
        fadd(fmul(h, v(r2)), f(1.0))
    };
    ir.define(
        sin,
        vec![
            // k = round(x / (π/2)), two-part reduction constant
            if_(
                cmp(Cc::Ge, v(x), f(0.0)),
                vec![set(k, ftoi(fadd(fmul(v(x), f(INV_PIO2)), f(0.5))))],
                vec![set(k, ftoi(fsub(fmul(v(x), f(INV_PIO2)), f(0.5))))],
            ),
            set(r, fsub(fsub(v(x), fmul(itof(v(k)), f(PIO2_HI))), fmul(itof(v(k)), f(PIO2_LO)))),
            set(r2, fmul(v(r), v(r))),
            // quadrant = k mod 4 (arithmetically non-negative)
            set(q, irem(iadd(irem(v(k), i(4)), i(4)), i(4))),
            set(sign, f(1.0)),
            if_(
                cmp(Cc::Ge, v(q), i(2)),
                vec![set(sign, f(-1.0)), set(q, isub(v(q), i(2)))],
                vec![],
            ),
            if_(cmp(Cc::Eq, v(q), i(0)), vec![set(kernel, sin_poly)], vec![set(kernel, cos_poly)]),
            ret(fmul(v(sign), v(kernel))),
        ],
    );
    sin
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileOptions};
    use fpvm::{Vm, VmOptions};

    /// Evaluate one soft function over a set of inputs in the VM.
    fn eval(fun: &str, inputs: &[f64]) -> Vec<f64> {
        let mut ir = IrProgram::new("t");
        let xs = ir.array_f64_init("xs", inputs.to_vec());
        let out = ir.array_f64("out", inputs.len());
        let lib = install(&mut ir);
        let fref = match fun {
            "exp" => lib.exp,
            "log" => lib.log,
            "sin" => lib.sin,
            _ => unreachable!(),
        };
        ir.module("main");
        let n = inputs.len() as i64;
        let main = ir.func("main", &[], None, |ir, fr, _| {
            let k = ir.local_i(fr);
            vec![for_(k, i(0), i(n), vec![st(out, v(k), call(fref, vec![ld(xs, v(k))]))])]
        });
        ir.set_entry(main);
        let p = compile(&ir, &CompileOptions::default());
        let mut vm = Vm::new(&p, VmOptions::default());
        assert!(vm.run().ok());
        vm.mem.read_f64_slice(p.symbol("out").unwrap(), inputs.len()).unwrap()
    }

    #[test]
    fn soft_exp_accuracy() {
        let xs: Vec<f64> = (-40..=40).map(|k| k as f64 * 0.37).collect();
        for (x, got) in xs.iter().zip(eval("exp", &xs)) {
            let want = x.exp();
            let rel = ((got - want) / want).abs();
            assert!(rel < 1e-11, "exp({x}) = {got}, want {want} (rel {rel:e})");
        }
    }

    #[test]
    fn soft_log_accuracy() {
        let xs: Vec<f64> =
            [1e-9, 1e-3, 0.1, 0.5, 0.99, 1.0, 1.01, 2.0, 10.0, 12345.0, 1e12].to_vec();
        for (x, got) in xs.iter().zip(eval("log", &xs)) {
            let want = x.ln();
            let err = (got - want).abs() / want.abs().max(1e-3);
            assert!(err < 1e-9, "log({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn soft_sin_accuracy() {
        let xs: Vec<f64> = (-100..=100).map(|k| k as f64 * 0.173).collect();
        for (x, got) in xs.iter().zip(eval("sin", &xs)) {
            let want = x.sin();
            let err = (got - want).abs();
            assert!(err < 1e-10, "sin({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn soft_libm_lives_in_its_own_module() {
        let mut ir = IrProgram::new("app");
        let _ = install(&mut ir);
        // functions get a dedicated module so the search can treat libm
        // as an external library unit
        assert!(ir.ignore_hints().is_empty());
        let p = compile(
            &{
                ir.module("main");
                let main = ir.func("main", &[], None, |_, _, _| vec![]);
                ir.set_entry(main);
                ir
            },
            &CompileOptions::default(),
        );
        assert!(p.modules.iter().any(|m| m.name == "libm"));
    }
}
