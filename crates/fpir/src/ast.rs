//! The structured IR: typed variables, global arrays, expressions and
//! statements. Workloads are written against this AST and compiled to
//! `fpvm` programs by [`crate::compile()`] — the stand-in for the Fortran
//! compiler that produced the paper's benchmark binaries.

use fpvm::isa::{FpAluOp, IntOp, MathFun};

/// Scalar types of the source language. Note there is deliberately no
/// `F32`: source programs are written double-precision only, exactly like
/// the paper's subjects; single precision enters either through the
/// instrumentation layer or through whole-program lowering
/// ([`crate::compile::FpWidth::F32`], the "manual conversion" analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// Double-precision float.
    F64,
    /// 64-bit signed integer.
    I64,
}

/// A typed local variable (or parameter) of a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var {
    pub(crate) fn_id: u32,
    pub(crate) id: u32,
    /// The variable's type.
    pub ty: Ty,
}

/// A global array reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrRef {
    pub(crate) id: u32,
    /// Element type.
    pub ty: Ty,
}

/// A function reference (declared before defined, enabling recursion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnRef(pub(crate) u32);

/// Comparison condition codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cc {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
}

/// Expressions. Every expression has a scalar type derivable from its
/// operands ([`Expr::ty_shallow`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Double-precision constant.
    F64(f64),
    /// Integer constant.
    I64(i64),
    /// Variable read.
    Var(Var),
    /// Array element read: `arr[idx]`.
    Ld(ArrRef, Box<Expr>),
    /// Floating binary operation.
    FBin(FpAluOp, Box<Expr>, Box<Expr>),
    /// Integer binary operation.
    IBin(IntOp, Box<Expr>, Box<Expr>),
    /// Floating square root.
    FSqrt(Box<Expr>),
    /// Math intrinsic (sin/cos/exp/log/abs/neg).
    FMath(MathFun, Box<Expr>),
    /// Integer to float conversion.
    IToF(Box<Expr>),
    /// Float to integer conversion (truncating).
    FToI(Box<Expr>),
    /// Reinterpret 64 integer bits as a double (no conversion) — the
    /// bit-manipulation primitive real `libm` implementations use.
    BitsToF(Box<Expr>),
    /// Reinterpret a double's bit pattern as an integer (no conversion).
    FToBits(Box<Expr>),
    /// Function call (must have a return type).
    Call(FnRef, Vec<Expr>),
}

impl Expr {
    /// The expression's scalar type. `Call` types are resolved by the
    /// compiler against the callee's declaration; here calls report `F64`
    /// optimistically and the compiler checks the real signature.
    pub fn ty_shallow(&self) -> Option<Ty> {
        match self {
            Expr::F64(_) | Expr::FBin(..) | Expr::FSqrt(_) | Expr::FMath(..) | Expr::IToF(_) => {
                Some(Ty::F64)
            }
            Expr::I64(_) | Expr::IBin(..) | Expr::FToI(_) | Expr::FToBits(_) => Some(Ty::I64),
            Expr::BitsToF(_) => Some(Ty::F64),
            Expr::Var(v) => Some(v.ty),
            Expr::Ld(a, _) => Some(a.ty),
            Expr::Call(..) => None,
        }
    }
}

/// A branch/loop condition: a single comparison. Compound conditions are
/// expressed with nested `If`s, as the low-level code would be anyway.
#[derive(Debug, Clone, PartialEq)]
pub struct Cmp {
    /// Condition code.
    pub cc: Cc,
    /// Left operand.
    pub a: Expr,
    /// Right operand.
    pub b: Expr,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var = expr`.
    Set(Var, Expr),
    /// `arr[idx] = val`.
    St(ArrRef, Expr, Expr),
    /// `if cmp { .. } else { .. }`.
    If(Cmp, Vec<Stmt>, Vec<Stmt>),
    /// `while cmp { .. }`.
    While(Cmp, Vec<Stmt>),
    /// `for var = start; var < end; var += 1 { .. }` (integer loop var).
    For(Var, Expr, Expr, Vec<Stmt>),
    /// Evaluate an expression for its side effects (void or ignored call).
    Expr(Expr),
    /// Return from the function.
    Ret(Option<Expr>),
    /// Packed (SIMD) AXPY over f64 arrays: `y[0..n] += a * x[0..n]`,
    /// emitted as 128-bit packed instructions two doubles at a time.
    /// `n` must be even. Exists to exercise the packed-replacement path
    /// the paper's Fig. 5 describes for XMM registers.
    PackedAxpy {
        /// Destination/accumulator array.
        y: ArrRef,
        /// Scalar multiplier.
        a: Expr,
        /// Source array.
        x: ArrRef,
        /// Element count (even).
        n: Expr,
    },
}

// ---------------------------------------------------------------------
// Ergonomic constructors, so workload kernels read close to the math.
// ---------------------------------------------------------------------

/// Double constant.
pub fn f(v: f64) -> Expr {
    Expr::F64(v)
}

/// Integer constant.
pub fn i(v: i64) -> Expr {
    Expr::I64(v)
}

/// Variable read.
pub fn v(var: Var) -> Expr {
    Expr::Var(var)
}

/// Array element read.
pub fn ld(arr: ArrRef, idx: Expr) -> Expr {
    Expr::Ld(arr, Box::new(idx))
}

/// Floating addition.
pub fn fadd(a: Expr, b: Expr) -> Expr {
    Expr::FBin(FpAluOp::Add, Box::new(a), Box::new(b))
}

/// Floating subtraction.
pub fn fsub(a: Expr, b: Expr) -> Expr {
    Expr::FBin(FpAluOp::Sub, Box::new(a), Box::new(b))
}

/// Floating multiplication.
pub fn fmul(a: Expr, b: Expr) -> Expr {
    Expr::FBin(FpAluOp::Mul, Box::new(a), Box::new(b))
}

/// Floating division.
pub fn fdiv(a: Expr, b: Expr) -> Expr {
    Expr::FBin(FpAluOp::Div, Box::new(a), Box::new(b))
}

/// Floating minimum (x86 semantics).
pub fn fmin(a: Expr, b: Expr) -> Expr {
    Expr::FBin(FpAluOp::Min, Box::new(a), Box::new(b))
}

/// Floating maximum (x86 semantics).
pub fn fmax(a: Expr, b: Expr) -> Expr {
    Expr::FBin(FpAluOp::Max, Box::new(a), Box::new(b))
}

/// Square root.
pub fn fsqrt(a: Expr) -> Expr {
    Expr::FSqrt(Box::new(a))
}

/// Math intrinsic.
pub fn fmath(fun: MathFun, a: Expr) -> Expr {
    Expr::FMath(fun, Box::new(a))
}

/// Absolute value.
pub fn fabs(a: Expr) -> Expr {
    fmath(MathFun::Abs, a)
}

/// Negation.
pub fn fneg(a: Expr) -> Expr {
    fmath(MathFun::Neg, a)
}

/// Integer addition.
pub fn iadd(a: Expr, b: Expr) -> Expr {
    Expr::IBin(IntOp::Add, Box::new(a), Box::new(b))
}

/// Integer subtraction.
pub fn isub(a: Expr, b: Expr) -> Expr {
    Expr::IBin(IntOp::Sub, Box::new(a), Box::new(b))
}

/// Integer multiplication.
pub fn imul(a: Expr, b: Expr) -> Expr {
    Expr::IBin(IntOp::Mul, Box::new(a), Box::new(b))
}

/// Integer division.
pub fn idiv(a: Expr, b: Expr) -> Expr {
    Expr::IBin(IntOp::Div, Box::new(a), Box::new(b))
}

/// Integer remainder.
pub fn irem(a: Expr, b: Expr) -> Expr {
    Expr::IBin(IntOp::Rem, Box::new(a), Box::new(b))
}

/// Bitwise AND.
pub fn iand(a: Expr, b: Expr) -> Expr {
    Expr::IBin(IntOp::And, Box::new(a), Box::new(b))
}

/// Bitwise OR.
pub fn ior(a: Expr, b: Expr) -> Expr {
    Expr::IBin(IntOp::Or, Box::new(a), Box::new(b))
}

/// Bitwise XOR.
pub fn ixor(a: Expr, b: Expr) -> Expr {
    Expr::IBin(IntOp::Xor, Box::new(a), Box::new(b))
}

/// Logical shift left.
pub fn ishl(a: Expr, b: Expr) -> Expr {
    Expr::IBin(IntOp::Shl, Box::new(a), Box::new(b))
}

/// Logical shift right.
pub fn ishr(a: Expr, b: Expr) -> Expr {
    Expr::IBin(IntOp::Shr, Box::new(a), Box::new(b))
}

/// Integer to float.
pub fn itof(a: Expr) -> Expr {
    Expr::IToF(Box::new(a))
}

/// Float to integer (truncating).
pub fn ftoi(a: Expr) -> Expr {
    Expr::FToI(Box::new(a))
}

/// Reinterpret integer bits as a double (like `f64::from_bits`).
pub fn bits_to_f(a: Expr) -> Expr {
    Expr::BitsToF(Box::new(a))
}

/// Reinterpret a double as its raw bits (like `f64::to_bits`).
pub fn f_to_bits(a: Expr) -> Expr {
    Expr::FToBits(Box::new(a))
}

/// Function call expression.
pub fn call(f: FnRef, args: Vec<Expr>) -> Expr {
    Expr::Call(f, args)
}

/// Comparison constructor.
pub fn cmp(cc: Cc, a: Expr, b: Expr) -> Cmp {
    Cmp { cc, a, b }
}

/// `var = expr` statement.
pub fn set(var: Var, e: Expr) -> Stmt {
    Stmt::Set(var, e)
}

/// `arr[idx] = val` statement.
pub fn st(arr: ArrRef, idx: Expr, val: Expr) -> Stmt {
    Stmt::St(arr, idx, val)
}

/// `if` statement.
pub fn if_(c: Cmp, then: Vec<Stmt>, els: Vec<Stmt>) -> Stmt {
    Stmt::If(c, then, els)
}

/// `while` statement.
pub fn while_(c: Cmp, body: Vec<Stmt>) -> Stmt {
    Stmt::While(c, body)
}

/// Counted `for` loop over `[start, end)`.
pub fn for_(var: Var, start: Expr, end: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::For(var, start, end, body)
}

/// Call-for-side-effects statement.
pub fn do_(e: Expr) -> Stmt {
    Stmt::Expr(e)
}

/// Return statement.
pub fn ret(e: Expr) -> Stmt {
    Stmt::Ret(Some(e))
}

/// Void return statement.
pub fn ret_void() -> Stmt {
    Stmt::Ret(None)
}

/// Initial contents of a global array.
#[derive(Debug, Clone)]
pub enum ArrInit {
    /// All zeros.
    Zero,
    /// Explicit double data (array must be `F64`).
    F64(Vec<f64>),
    /// Explicit integer data (array must be `I64`).
    I64(Vec<i64>),
}

#[derive(Debug, Clone)]
pub(crate) struct ArrDecl {
    pub name: String,
    pub ty: Ty,
    pub len: usize,
    pub init: ArrInit,
}

#[derive(Debug, Clone)]
pub(crate) struct FnDecl {
    pub name: String,
    pub module: u32,
    pub params: Vec<Var>,
    pub ret: Option<Ty>,
    pub n_locals: u32,
    pub local_tys: Vec<Ty>,
    pub body: Option<Vec<Stmt>>,
    /// Advisory: this function should be flagged `ignore` in initial
    /// configurations (e.g. FP-trick random number generators, §2.1).
    pub ignore_hint: bool,
}

/// A whole source program: modules, functions, global arrays.
#[derive(Debug, Clone)]
pub struct IrProgram {
    pub(crate) modules: Vec<String>,
    pub(crate) cur_module: u32,
    pub(crate) fns: Vec<FnDecl>,
    pub(crate) arrays: Vec<ArrDecl>,
    pub(crate) entry: Option<FnRef>,
    /// Extra stack bytes to reserve beyond the computed frames.
    pub stack_reserve: usize,
}

impl IrProgram {
    /// Create a program with one initial module.
    pub fn new(module: impl Into<String>) -> Self {
        IrProgram {
            modules: vec![module.into()],
            cur_module: 0,
            fns: Vec::new(),
            arrays: Vec::new(),
            entry: None,
            stack_reserve: 1 << 16,
        }
    }

    /// Start a new module; functions declared afterwards belong to it.
    pub fn module(&mut self, name: impl Into<String>) {
        self.modules.push(name.into());
        self.cur_module = (self.modules.len() - 1) as u32;
    }

    /// Declare a function (parameters and return type); define later with
    /// [`IrProgram::define`]. Returns the reference and the parameter vars.
    pub fn declare(
        &mut self,
        name: impl Into<String>,
        params: &[Ty],
        ret: Option<Ty>,
    ) -> (FnRef, Vec<Var>) {
        let fn_id = self.fns.len() as u32;
        let vars: Vec<Var> =
            params.iter().enumerate().map(|(k, &ty)| Var { fn_id, id: k as u32, ty }).collect();
        self.fns.push(FnDecl {
            name: name.into(),
            module: self.cur_module,
            params: vars.clone(),
            ret,
            n_locals: params.len() as u32,
            local_tys: params.to_vec(),
            body: None,
            ignore_hint: false,
        });
        (FnRef(fn_id), vars)
    }

    /// Allocate a local variable in `f`.
    pub fn local(&mut self, f: FnRef, ty: Ty) -> Var {
        let d = &mut self.fns[f.0 as usize];
        let id = d.n_locals;
        d.n_locals += 1;
        d.local_tys.push(ty);
        Var { fn_id: f.0, id, ty }
    }

    /// Allocate a double local.
    pub fn local_f(&mut self, f: FnRef) -> Var {
        self.local(f, Ty::F64)
    }

    /// Allocate an integer local.
    pub fn local_i(&mut self, f: FnRef) -> Var {
        self.local(f, Ty::I64)
    }

    /// Attach a body to a declared function.
    pub fn define(&mut self, f: FnRef, body: Vec<Stmt>) {
        assert!(self.fns[f.0 as usize].body.is_none(), "function defined twice");
        self.fns[f.0 as usize].body = Some(body);
    }

    /// Declare-and-define in one step for non-recursive functions.
    pub fn func(
        &mut self,
        name: impl Into<String>,
        params: &[Ty],
        ret: Option<Ty>,
        build: impl FnOnce(&mut Self, FnRef, &[Var]) -> Vec<Stmt>,
    ) -> FnRef {
        let (f, vars) = self.declare(name, params, ret);
        let body = build(self, f, &vars);
        self.define(f, body);
        f
    }

    /// Mark a function as "recommend ignore" (e.g. FP-trick RNGs).
    pub fn mark_ignore(&mut self, f: FnRef) {
        self.fns[f.0 as usize].ignore_hint = true;
    }

    /// Names of functions carrying the ignore hint.
    pub fn ignore_hints(&self) -> Vec<String> {
        self.fns.iter().filter(|f| f.ignore_hint).map(|f| f.name.clone()).collect()
    }

    /// Declare a global array.
    pub fn array(&mut self, name: impl Into<String>, ty: Ty, len: usize, init: ArrInit) -> ArrRef {
        match (&init, ty) {
            (ArrInit::F64(d), Ty::F64) => assert_eq!(d.len(), len, "init length mismatch"),
            (ArrInit::I64(d), Ty::I64) => assert_eq!(d.len(), len, "init length mismatch"),
            (ArrInit::Zero, _) => {}
            _ => panic!("array init type mismatch"),
        }
        let id = self.arrays.len() as u32;
        self.arrays.push(ArrDecl { name: name.into(), ty, len, init });
        ArrRef { id, ty }
    }

    /// Declare a zeroed double array.
    pub fn array_f64(&mut self, name: impl Into<String>, len: usize) -> ArrRef {
        self.array(name, Ty::F64, len, ArrInit::Zero)
    }

    /// Declare a double array with initial data.
    pub fn array_f64_init(&mut self, name: impl Into<String>, data: Vec<f64>) -> ArrRef {
        let len = data.len();
        self.array(name, Ty::F64, len, ArrInit::F64(data))
    }

    /// Declare a zeroed integer array.
    pub fn array_i64(&mut self, name: impl Into<String>, len: usize) -> ArrRef {
        self.array(name, Ty::I64, len, ArrInit::Zero)
    }

    /// Declare an integer array with initial data.
    pub fn array_i64_init(&mut self, name: impl Into<String>, data: Vec<i64>) -> ArrRef {
        let len = data.len();
        self.array(name, Ty::I64, len, ArrInit::I64(data))
    }

    /// Set the entry function (must take no parameters).
    pub fn set_entry(&mut self, f: FnRef) {
        assert!(self.fns[f.0 as usize].params.is_empty(), "entry takes no parameters");
        self.entry = Some(f);
    }

    /// Signature of a function.
    pub fn signature(&self, f: FnRef) -> (Vec<Ty>, Option<Ty>) {
        let d = &self.fns[f.0 as usize];
        (d.params.iter().map(|p| p.ty).collect(), d.ret)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_program() {
        let mut p = IrProgram::new("m");
        let a = p.array_f64("a", 4);
        let main = p.func("main", &[], None, |p, f, _| {
            let x = p.local_f(f);
            let i0 = p.local_i(f);
            vec![
                set(x, f64_const_helper()),
                for_(i0, i(0), i(4), vec![st(a, v(i0), fadd(v(x), itof(v(i0))))]),
                ret_void(),
            ]
        });
        p.set_entry(main);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.arrays.len(), 1);
        assert!(p.fns[0].body.is_some());
    }

    fn f64_const_helper() -> Expr {
        f(1.5)
    }

    #[test]
    #[should_panic(expected = "init length mismatch")]
    fn bad_init_len() {
        let mut p = IrProgram::new("m");
        p.array("a", Ty::F64, 3, ArrInit::F64(vec![1.0]));
    }

    #[test]
    #[should_panic(expected = "entry takes no parameters")]
    fn entry_with_params_rejected() {
        let mut p = IrProgram::new("m");
        let (fr, _) = p.declare("f", &[Ty::F64], None);
        p.define(fr, vec![ret_void()]);
        p.set_entry(fr);
    }

    #[test]
    fn ignore_hint_collection() {
        let mut p = IrProgram::new("m");
        let (rng, _) = p.declare("rng", &[], Some(Ty::F64));
        p.define(rng, vec![ret(f(0.5))]);
        p.mark_ignore(rng);
        assert_eq!(p.ignore_hints(), vec!["rng".to_string()]);
    }
}
