//! Compilation of the structured IR to `fpvm` programs.
//!
//! The code generator is deliberately simple (tree-walk evaluation with a
//! register stack, memory-resident locals, constant pool), which produces
//! code in the same shape a classic `-O2` scalar compilation produces:
//! scalar SSE arithmetic with register and memory operands — the exact
//! instruction mix the paper's instrumentation targets.
//!
//! Two lowering widths are supported:
//!
//! * [`FpWidth::F64`] — faithful double-precision compilation (the
//!   "original binary");
//! * [`FpWidth::F32`] — whole-program single-precision lowering, the
//!   analogue of the paper's *manual conversion* of the Fortran sources
//!   (§3.1), used for bit-exactness comparison and true-speedup runs.

use crate::ast::*;
use fpvm::isa::*;
use fpvm::program::Program;
use std::collections::HashMap;

/// Floating-point width for whole-program lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FpWidth {
    /// Compile FP operations and data in double precision (default).
    F64,
    /// Compile the entire program in single precision ("manual conversion").
    F32,
}

/// Compilation options.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Floating-point lowering width.
    pub fp: FpWidth,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions { fp: FpWidth::F64 }
    }
}

// Register conventions (documented in fpvm::isa):
//   xmm0..7   FP expression temporaries
//   xmm8..13  FP argument registers
//   xmm14     reserved (unused)
//   xmm15     instrumentation scratch
//   gpr0/1    (rax/rbx) instrumentation scratch
//   gpr2..7   integer expression temporaries
//   gpr8..11  integer argument registers
//   gpr12,13  codegen scratch
//   gpr15     stack pointer
const FP_TEMPS: [u8; 8] = [0, 1, 2, 3, 4, 5, 6, 7];
const INT_TEMPS: [u8; 6] = [2, 3, 4, 5, 6, 7];
const FP_ARGS: [u8; 6] = [8, 9, 10, 11, 12, 13];
const INT_ARGS: [u8; 4] = [8, 9, 10, 11];
const SCRATCH_G: Gpr = Gpr(12);
const SCRATCH_G2: Gpr = Gpr(13);

struct Pool {
    regs: &'static [u8],
    used: u16,
}

impl Pool {
    fn new(regs: &'static [u8]) -> Self {
        Pool { regs, used: 0 }
    }
    fn alloc(&mut self) -> u8 {
        for (k, &r) in self.regs.iter().enumerate() {
            if self.used & (1 << k) == 0 {
                self.used |= 1 << k;
                return r;
            }
        }
        panic!("expression too deep: register pool exhausted");
    }
    fn free(&mut self, r: u8) {
        let k = self.regs.iter().position(|&x| x == r).expect("freeing foreign register");
        assert!(self.used & (1 << k) != 0, "double free of register");
        self.used &= !(1 << k);
    }
    fn live(&self) -> Vec<u8> {
        self.regs
            .iter()
            .enumerate()
            .filter(|(k, _)| self.used & (1 << k) != 0)
            .map(|(_, &r)| r)
            .collect()
    }
}

struct Compiler<'a> {
    ir: &'a IrProgram,
    opts: CompileOptions,
    prog: Program,
    fn_map: Vec<FuncId>,
    arr_addr: Vec<u64>,
    const_pool: Vec<u8>,
    const_base: u64,
    const_map: HashMap<u64, u64>,
}

struct FnState {
    func: FuncId,
    cur: BlockId,
    var_off: Vec<i64>,
    spill_base: i64,
    frame: i64,
    fp: Pool,
    int: Pool,
    is_entry: bool,
    ret: Option<Ty>,
}

#[derive(Clone, Copy, Debug)]
enum Val {
    Fp(Xmm),
    Int(Gpr),
}

impl<'a> Compiler<'a> {
    fn fp_bytes(&self) -> usize {
        match self.opts.fp {
            FpWidth::F64 => 8,
            FpWidth::F32 => 4,
        }
    }

    fn prec(&self) -> Prec {
        match self.opts.fp {
            FpWidth::F64 => Prec::Double,
            FpWidth::F32 => Prec::Single,
        }
    }

    fn fp_w(&self) -> Width {
        match self.opts.fp {
            FpWidth::F64 => Width::W64,
            FpWidth::F32 => Width::W32,
        }
    }

    fn layout_arrays(&mut self) {
        let mut addr = 0u64;
        for a in &self.ir.arrays {
            addr = (addr + 15) & !15;
            self.arr_addr.push(addr);
            self.prog.symbols.insert(a.name.clone(), addr);
            let esz = match a.ty {
                Ty::F64 => self.fp_bytes(),
                Ty::I64 => 8,
            } as u64;
            addr += esz * a.len as u64;
        }
        self.const_base = (addr + 15) & !15;
    }

    fn build_globals(&mut self) -> Vec<u8> {
        let mut g = vec![0u8; self.const_base as usize];
        for (a, &addr) in self.ir.arrays.iter().zip(&self.arr_addr) {
            let mut at = addr as usize;
            match (&a.init, a.ty) {
                (ArrInit::Zero, _) => {}
                (ArrInit::F64(d), Ty::F64) => {
                    for &x in d {
                        match self.opts.fp {
                            FpWidth::F64 => {
                                g[at..at + 8].copy_from_slice(&x.to_bits().to_le_bytes());
                                at += 8;
                            }
                            FpWidth::F32 => {
                                g[at..at + 4].copy_from_slice(&(x as f32).to_bits().to_le_bytes());
                                at += 4;
                            }
                        }
                    }
                }
                (ArrInit::I64(d), Ty::I64) => {
                    for &x in d {
                        g[at..at + 8].copy_from_slice(&x.to_le_bytes());
                        at += 8;
                    }
                }
                _ => unreachable!("checked at declaration"),
            }
        }
        g.extend_from_slice(&self.const_pool);
        g
    }

    /// Intern an FP constant in the pool, returning its address.
    fn fconst_addr(&mut self, x: f64) -> u64 {
        let (key, bytes): (u64, Vec<u8>) = match self.opts.fp {
            FpWidth::F64 => (x.to_bits(), x.to_bits().to_le_bytes().to_vec()),
            FpWidth::F32 => {
                let b = (x as f32).to_bits();
                (b as u64, b.to_le_bytes().to_vec())
            }
        };
        if let Some(&a) = self.const_map.get(&key) {
            return a;
        }
        let a = self.const_base + self.const_pool.len() as u64;
        self.const_pool.extend_from_slice(&bytes);
        self.const_map.insert(key, a);
        a
    }

    fn emit(&mut self, st: &mut FnState, kind: InstKind) {
        self.prog.push_insn(st.cur, kind);
    }

    fn new_block(&mut self, st: &mut FnState) -> BlockId {
        self.prog.add_block(st.func)
    }

    fn var_mem(&self, st: &FnState, v: Var) -> MemRef {
        MemRef::base_disp(Gpr::RSP, st.var_off[v.id as usize])
    }

    // ------------------------------------------------------------------
    // Expression evaluation
    // ------------------------------------------------------------------

    fn expr_ty(&self, e: &Expr) -> Ty {
        match e {
            Expr::Call(f, _) => {
                self.ir.fns[f.0 as usize].ret.expect("call expression to void function")
            }
            other => other.ty_shallow().expect("unreachable: only Call is deferred"),
        }
    }

    /// Evaluate an FP expression, preferring to return a bare memory
    /// operand (vars, array loads, constants) so parent operations can fold
    /// it — producing realistic memory-operand instructions. Returns the
    /// operand plus an optional register to free afterwards.
    fn eval_fp_operand(&mut self, st: &mut FnState, e: &Expr) -> (RM, Option<Val>) {
        match e {
            Expr::F64(x) => {
                let a = self.fconst_addr(*x);
                (RM::Mem(MemRef::abs(a)), None)
            }
            Expr::Var(v) => {
                assert_eq!(v.ty, Ty::F64, "integer variable in FP context");
                (RM::Mem(self.var_mem(st, *v)), None)
            }
            Expr::Ld(arr, idx) => {
                assert_eq!(arr.ty, Ty::F64, "integer array in FP context");
                let gi = self.eval_int(st, idx);
                let esz = self.fp_bytes() as u8;
                let m = MemRef {
                    base: None,
                    index: Some((gi, esz)),
                    disp: self.arr_addr[arr.id as usize] as i64,
                };
                (RM::Mem(m), Some(Val::Int(gi)))
            }
            _ => {
                let x = self.eval_fp(st, e);
                (RM::Reg(x), Some(Val::Fp(x)))
            }
        }
    }

    fn free_val(&mut self, st: &mut FnState, v: Option<Val>) {
        match v {
            Some(Val::Fp(x)) => st.fp.free(x.0),
            Some(Val::Int(g)) => st.int.free(g.0),
            None => {}
        }
    }

    /// Evaluate an FP expression into a freshly allocated XMM temp.
    fn eval_fp(&mut self, st: &mut FnState, e: &Expr) -> Xmm {
        match e {
            Expr::F64(_) | Expr::Var(_) | Expr::Ld(..) => {
                let (rm, hold) = self.eval_fp_operand(st, e);
                debug_assert!(matches!(rm, RM::Mem(_)), "reg case handled below");
                let dst = Xmm(st.fp.alloc());
                let src = match rm {
                    RM::Mem(m) => FpLoc::Mem(m),
                    RM::Reg(x) => FpLoc::Reg(x),
                };
                self.emit(st, InstKind::MovF { width: self.fp_w(), dst: FpLoc::Reg(dst), src });
                self.free_val(st, hold);
                dst
            }
            Expr::FBin(op, a, b) => {
                let ra = self.eval_fp(st, a);
                let (rb, hold) = self.eval_fp_operand(st, b);
                self.emit(
                    st,
                    InstKind::FpArith {
                        op: *op,
                        prec: self.prec(),
                        packed: false,
                        dst: ra,
                        src: rb,
                    },
                );
                self.free_val(st, hold);
                ra
            }
            Expr::FSqrt(a) => {
                let (ra, hold) = self.eval_fp_operand(st, a);
                let dst = Xmm(st.fp.alloc());
                self.emit(st, InstKind::FpSqrt { prec: self.prec(), packed: false, dst, src: ra });
                self.free_val(st, hold);
                dst
            }
            Expr::FMath(fun, a) => {
                let (ra, hold) = self.eval_fp_operand(st, a);
                let dst = Xmm(st.fp.alloc());
                self.emit(st, InstKind::FpMath { fun: *fun, prec: self.prec(), dst, src: ra });
                self.free_val(st, hold);
                dst
            }
            Expr::IToF(a) => {
                let g = self.eval_int(st, a);
                let dst = Xmm(st.fp.alloc());
                self.emit(st, InstKind::CvtI2F { to: self.prec(), dst, src: GMI::Reg(g) });
                st.int.free(g.0);
                dst
            }
            Expr::Call(f, args) => match self.eval_call(st, *f, args) {
                Some(Val::Fp(x)) => x,
                _ => panic!("FP context requires an FP-returning call"),
            },
            Expr::BitsToF(a) => {
                // NOTE: in F32 lowering the payload is the low 32 bits;
                // bit-twiddling code is only meaningful in F64 mode, which
                // is precisely why real libm internals resist conversion.
                let g = self.eval_int(st, a);
                let dst = Xmm(st.fp.alloc());
                self.emit(st, InstKind::PInsrQ { dst, src: g, lane: 0 });
                st.int.free(g.0);
                dst
            }
            Expr::I64(_) | Expr::IBin(..) | Expr::FToI(_) | Expr::FToBits(_) => {
                panic!("integer expression in FP context")
            }
        }
    }

    /// Evaluate an integer expression into a freshly allocated GPR temp.
    fn eval_int(&mut self, st: &mut FnState, e: &Expr) -> Gpr {
        match e {
            Expr::I64(x) => {
                let g = Gpr(st.int.alloc());
                self.emit(st, InstKind::MovI { dst: GM::Reg(g), src: GMI::Imm(*x) });
                g
            }
            Expr::Var(v) => {
                assert_eq!(v.ty, Ty::I64, "float variable in int context");
                let g = Gpr(st.int.alloc());
                let m = self.var_mem(st, *v);
                self.emit(st, InstKind::MovI { dst: GM::Reg(g), src: GMI::Mem(m) });
                g
            }
            Expr::Ld(arr, idx) => {
                assert_eq!(arr.ty, Ty::I64, "float array in int context");
                let gi = self.eval_int(st, idx);
                let m = MemRef {
                    base: None,
                    index: Some((gi, 8)),
                    disp: self.arr_addr[arr.id as usize] as i64,
                };
                self.emit(st, InstKind::MovI { dst: GM::Reg(gi), src: GMI::Mem(m) });
                gi
            }
            Expr::IBin(op, a, b) => {
                let ga = self.eval_int(st, a);
                // immediate folding for the common case
                if let Expr::I64(k) = **b {
                    self.emit(st, InstKind::IntAlu { op: *op, dst: ga, src: GMI::Imm(k) });
                    return ga;
                }
                let gb = self.eval_int(st, b);
                self.emit(st, InstKind::IntAlu { op: *op, dst: ga, src: GMI::Reg(gb) });
                st.int.free(gb.0);
                ga
            }
            Expr::FToI(a) => {
                let (ra, hold) = self.eval_fp_operand(st, a);
                let g = Gpr(st.int.alloc());
                self.emit(st, InstKind::CvtF2I { from: self.prec(), dst: g, src: ra });
                self.free_val(st, hold);
                g
            }
            Expr::Call(f, args) => match self.eval_call(st, *f, args) {
                Some(Val::Int(g)) => g,
                _ => panic!("int context requires an int-returning call"),
            },
            Expr::FToBits(a) => {
                let x = self.eval_fp(st, a);
                let g = Gpr(st.int.alloc());
                self.emit(st, InstKind::PExtrQ { dst: g, src: x, lane: 0 });
                st.fp.free(x.0);
                g
            }
            Expr::F64(_)
            | Expr::FBin(..)
            | Expr::FSqrt(_)
            | Expr::FMath(..)
            | Expr::IToF(_)
            | Expr::BitsToF(_) => {
                panic!("FP expression in integer context")
            }
        }
    }

    /// Evaluate a call; returns the value register (held in the matching
    /// pool) or `None` for void calls.
    fn eval_call(&mut self, st: &mut FnState, f: FnRef, args: &[Expr]) -> Option<Val> {
        let decl = &self.ir.fns[f.0 as usize];
        let ret = decl.ret;
        let param_tys: Vec<Ty> = decl.params.iter().map(|p| p.ty).collect();
        assert_eq!(param_tys.len(), args.len(), "arity mismatch calling {}", decl.name);

        // 1. Evaluate all arguments into temporaries.
        let vals: Vec<Val> = args
            .iter()
            .zip(&param_tys)
            .map(|(a, &ty)| match ty {
                Ty::F64 => Val::Fp(self.eval_fp(st, a)),
                Ty::I64 => Val::Int(self.eval_int(st, a)),
            })
            .collect();

        // 2. Move them to the argument registers and free the temps.
        let (mut nf, mut ni) = (0usize, 0usize);
        for v in &vals {
            match v {
                Val::Fp(x) => {
                    assert!(nf < FP_ARGS.len(), "too many FP arguments");
                    self.emit(
                        st,
                        InstKind::MovF {
                            width: self.fp_w(),
                            dst: FpLoc::Reg(Xmm(FP_ARGS[nf])),
                            src: FpLoc::Reg(*x),
                        },
                    );
                    st.fp.free(x.0);
                    nf += 1;
                }
                Val::Int(g) => {
                    assert!(ni < INT_ARGS.len(), "too many int arguments");
                    self.emit(
                        st,
                        InstKind::MovI { dst: GM::Reg(Gpr(INT_ARGS[ni])), src: GMI::Reg(*g) },
                    );
                    st.int.free(g.0);
                    ni += 1;
                }
            }
        }

        // 3. Spill live temporaries (the callee may clobber them).
        let live_fp = st.fp.live();
        let live_int = st.int.live();
        for (k, &r) in live_fp.iter().enumerate() {
            let m = MemRef::base_disp(Gpr::RSP, st.spill_base + 8 * k as i64);
            self.emit(
                st,
                InstKind::MovF { width: Width::W64, dst: FpLoc::Mem(m), src: FpLoc::Reg(Xmm(r)) },
            );
        }
        for (k, &r) in live_int.iter().enumerate() {
            let m = MemRef::base_disp(Gpr::RSP, st.spill_base + 8 * (8 + k) as i64);
            self.emit(st, InstKind::MovI { dst: GM::Mem(m), src: GMI::Reg(Gpr(r)) });
        }

        // 4. Call.
        let callee = self.fn_map[f.0 as usize];
        self.emit(st, InstKind::Call { func: callee });

        // 5. Capture the return value.
        let out = match ret {
            Some(Ty::F64) => {
                let x = Xmm(st.fp.alloc());
                if x != Xmm(0) {
                    self.emit(
                        st,
                        InstKind::MovF {
                            width: self.fp_w(),
                            dst: FpLoc::Reg(x),
                            src: FpLoc::Reg(Xmm(0)),
                        },
                    );
                }
                Some(Val::Fp(x))
            }
            Some(Ty::I64) => {
                let g = Gpr(st.int.alloc());
                self.emit(st, InstKind::MovI { dst: GM::Reg(g), src: GMI::Reg(Gpr::RAX) });
                Some(Val::Int(g))
            }
            None => None,
        };

        // 6. Reload spilled temporaries.
        for (k, &r) in live_fp.iter().enumerate() {
            let m = MemRef::base_disp(Gpr::RSP, st.spill_base + 8 * k as i64);
            self.emit(
                st,
                InstKind::MovF { width: Width::W64, dst: FpLoc::Reg(Xmm(r)), src: FpLoc::Mem(m) },
            );
        }
        for (k, &r) in live_int.iter().enumerate() {
            let m = MemRef::base_disp(Gpr::RSP, st.spill_base + 8 * (8 + k) as i64);
            self.emit(st, InstKind::MovI { dst: GM::Reg(Gpr(r)), src: GMI::Mem(m) });
        }
        out
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn emit_cmp_branch(&mut self, st: &mut FnState, c: &Cmp, then_b: BlockId, else_b: BlockId) {
        let is_fp = self.expr_ty(&c.a) == Ty::F64;
        if is_fp {
            let ra = self.eval_fp(st, &c.a);
            let (rb, hold) = self.eval_fp_operand(st, &c.b);
            self.emit(st, InstKind::FpUcomi { prec: self.prec(), lhs: ra, src: rb });
            self.free_val(st, hold);
            st.fp.free(ra.0);
            let cond = match c.cc {
                Cc::Eq => Cond::Eq,
                Cc::Ne => Cond::Ne,
                Cc::Lt => Cond::Below,
                Cc::Le => Cond::BelowEq,
                Cc::Gt => Cond::Above,
                Cc::Ge => Cond::AboveEq,
            };
            self.prog.block_mut(st.cur).term =
                Terminator::Br { cond, then_: then_b, else_: else_b };
        } else {
            let ga = self.eval_int(st, &c.a);
            let src = if let Expr::I64(k) = c.b {
                GMI::Imm(k)
            } else {
                GMI::Reg(self.eval_int(st, &c.b))
            };
            self.emit(st, InstKind::Cmp { lhs: ga, src });
            if let GMI::Reg(g) = src {
                st.int.free(g.0);
            }
            st.int.free(ga.0);
            let cond = match c.cc {
                Cc::Eq => Cond::Eq,
                Cc::Ne => Cond::Ne,
                Cc::Lt => Cond::Lt,
                Cc::Le => Cond::Le,
                Cc::Gt => Cond::Gt,
                Cc::Ge => Cond::Ge,
            };
            self.prog.block_mut(st.cur).term =
                Terminator::Br { cond, then_: then_b, else_: else_b };
        }
    }

    fn compile_stmts(&mut self, st: &mut FnState, stmts: &[Stmt]) {
        for s in stmts {
            self.compile_stmt(st, s);
        }
    }

    fn compile_stmt(&mut self, st: &mut FnState, s: &Stmt) {
        match s {
            Stmt::Set(var, e) => match var.ty {
                Ty::F64 => {
                    let r = self.eval_fp(st, e);
                    let m = self.var_mem(st, *var);
                    self.emit(
                        st,
                        InstKind::MovF {
                            width: self.fp_w(),
                            dst: FpLoc::Mem(m),
                            src: FpLoc::Reg(r),
                        },
                    );
                    st.fp.free(r.0);
                }
                Ty::I64 => {
                    let g = self.eval_int(st, e);
                    let m = self.var_mem(st, *var);
                    self.emit(st, InstKind::MovI { dst: GM::Mem(m), src: GMI::Reg(g) });
                    st.int.free(g.0);
                }
            },
            Stmt::St(arr, idx, val) => {
                let gi = self.eval_int(st, idx);
                match arr.ty {
                    Ty::F64 => {
                        let r = self.eval_fp(st, val);
                        let esz = self.fp_bytes() as u8;
                        let m = MemRef {
                            base: None,
                            index: Some((gi, esz)),
                            disp: self.arr_addr[arr.id as usize] as i64,
                        };
                        self.emit(
                            st,
                            InstKind::MovF {
                                width: self.fp_w(),
                                dst: FpLoc::Mem(m),
                                src: FpLoc::Reg(r),
                            },
                        );
                        st.fp.free(r.0);
                    }
                    Ty::I64 => {
                        let g = self.eval_int(st, val);
                        let m = MemRef {
                            base: None,
                            index: Some((gi, 8)),
                            disp: self.arr_addr[arr.id as usize] as i64,
                        };
                        self.emit(st, InstKind::MovI { dst: GM::Mem(m), src: GMI::Reg(g) });
                        st.int.free(g.0);
                    }
                }
                st.int.free(gi.0);
            }
            Stmt::If(c, then_s, else_s) => {
                let then_b = self.new_block(st);
                let else_b = self.new_block(st);
                let join = self.new_block(st);
                self.emit_cmp_branch(st, c, then_b, else_b);
                st.cur = then_b;
                self.compile_stmts(st, then_s);
                self.prog.block_mut(st.cur).term = Terminator::Jmp(join);
                st.cur = else_b;
                self.compile_stmts(st, else_s);
                self.prog.block_mut(st.cur).term = Terminator::Jmp(join);
                st.cur = join;
            }
            Stmt::While(c, body) => {
                let head = self.new_block(st);
                self.prog.block_mut(st.cur).term = Terminator::Jmp(head);
                st.cur = head;
                let body_b = self.new_block(st);
                let exit = self.new_block(st);
                self.emit_cmp_branch(st, c, body_b, exit);
                st.cur = body_b;
                self.compile_stmts(st, body);
                self.prog.block_mut(st.cur).term = Terminator::Jmp(head);
                st.cur = exit;
            }
            Stmt::For(var, start, end, body) => {
                assert_eq!(var.ty, Ty::I64, "loop variable must be integer");
                self.compile_stmt(st, &Stmt::Set(*var, start.clone()));
                let head = self.new_block(st);
                self.prog.block_mut(st.cur).term = Terminator::Jmp(head);
                st.cur = head;
                let body_b = self.new_block(st);
                let exit = self.new_block(st);
                self.emit_cmp_branch(
                    st,
                    &Cmp { cc: Cc::Lt, a: Expr::Var(*var), b: end.clone() },
                    body_b,
                    exit,
                );
                st.cur = body_b;
                self.compile_stmts(st, body);
                // var += 1
                let m = self.var_mem(st, *var);
                self.emit(st, InstKind::MovI { dst: GM::Reg(SCRATCH_G), src: GMI::Mem(m) });
                self.emit(
                    st,
                    InstKind::IntAlu { op: IntOp::Add, dst: SCRATCH_G, src: GMI::Imm(1) },
                );
                self.emit(st, InstKind::MovI { dst: GM::Mem(m), src: GMI::Reg(SCRATCH_G) });
                self.prog.block_mut(st.cur).term = Terminator::Jmp(head);
                st.cur = exit;
            }
            Stmt::Expr(e) => {
                if let Expr::Call(f, args) = e {
                    let out = self.eval_call(st, *f, args);
                    self.free_val(st, out);
                } else {
                    // evaluate and discard
                    match self.expr_ty(e) {
                        Ty::F64 => {
                            let r = self.eval_fp(st, e);
                            st.fp.free(r.0);
                        }
                        Ty::I64 => {
                            let g = self.eval_int(st, e);
                            st.int.free(g.0);
                        }
                    }
                }
            }
            Stmt::Ret(e) => {
                match (e, st.ret) {
                    (Some(e), Some(Ty::F64)) => {
                        let r = self.eval_fp(st, e);
                        if r != Xmm(0) {
                            self.emit(
                                st,
                                InstKind::MovF {
                                    width: self.fp_w(),
                                    dst: FpLoc::Reg(Xmm(0)),
                                    src: FpLoc::Reg(r),
                                },
                            );
                        }
                        st.fp.free(r.0);
                    }
                    (Some(e), Some(Ty::I64)) => {
                        let g = self.eval_int(st, e);
                        self.emit(st, InstKind::MovI { dst: GM::Reg(Gpr::RAX), src: GMI::Reg(g) });
                        st.int.free(g.0);
                    }
                    (None, None) => {}
                    _ => panic!("return type mismatch"),
                }
                self.emit_epilogue(st);
                let dead = self.new_block(st);
                st.cur = dead;
            }
            Stmt::PackedAxpy { y, a, x, n } => self.compile_packed_axpy(st, *y, a, *x, n),
        }
    }

    fn emit_epilogue(&mut self, st: &mut FnState) {
        if st.frame > 0 {
            self.emit(
                st,
                InstKind::IntAlu { op: IntOp::Add, dst: Gpr::RSP, src: GMI::Imm(st.frame) },
            );
        }
        self.prog.block_mut(st.cur).term =
            if st.is_entry { Terminator::Halt } else { Terminator::Ret };
    }

    /// `y[0..n] += a * x[0..n]` with 128-bit packed instructions.
    fn compile_packed_axpy(&mut self, st: &mut FnState, y: ArrRef, a: &Expr, x: ArrRef, n: &Expr) {
        assert_eq!(y.ty, Ty::F64);
        assert_eq!(x.ty, Ty::F64);
        let lanes = match self.opts.fp {
            FpWidth::F64 => 2i64,
            FpWidth::F32 => 4,
        };
        let esz = self.fp_bytes() as u8;
        // broadcast a into all lanes of xa
        let xa = self.eval_fp(st, a);
        self.emit(st, InstKind::PExtrQ { dst: SCRATCH_G, src: xa, lane: 0 });
        if lanes == 4 {
            // [a, junk] -> [a, a] within the low 64 bits first
            self.emit(st, InstKind::MovI { dst: GM::Reg(SCRATCH_G2), src: GMI::Reg(SCRATCH_G) });
            self.emit(st, InstKind::IntAlu { op: IntOp::Shl, dst: SCRATCH_G2, src: GMI::Imm(32) });
            self.emit(
                st,
                InstKind::IntAlu { op: IntOp::And, dst: SCRATCH_G, src: GMI::Imm(0xFFFF_FFFF) },
            );
            self.emit(
                st,
                InstKind::IntAlu { op: IntOp::Or, dst: SCRATCH_G, src: GMI::Reg(SCRATCH_G2) },
            );
            self.emit(st, InstKind::PInsrQ { dst: xa, src: SCRATCH_G, lane: 0 });
        }
        self.emit(st, InstKind::PInsrQ { dst: xa, src: SCRATCH_G, lane: 1 });

        let gn = self.eval_int(st, n);
        let gi = Gpr(st.int.alloc());
        self.emit(st, InstKind::MovI { dst: GM::Reg(gi), src: GMI::Imm(0) });

        let head = self.new_block(st);
        self.prog.block_mut(st.cur).term = Terminator::Jmp(head);
        st.cur = head;
        let body = self.new_block(st);
        let exit = self.new_block(st);
        self.emit(st, InstKind::Cmp { lhs: gi, src: GMI::Reg(gn) });
        self.prog.block_mut(st.cur).term =
            Terminator::Br { cond: Cond::Lt, then_: body, else_: exit };
        st.cur = body;
        let xt = Xmm(st.fp.alloc());
        let yt = Xmm(st.fp.alloc());
        let xm = MemRef {
            base: None,
            index: Some((gi, esz)),
            disp: self.arr_addr[x.id as usize] as i64,
        };
        let ym = MemRef {
            base: None,
            index: Some((gi, esz)),
            disp: self.arr_addr[y.id as usize] as i64,
        };
        self.emit(
            st,
            InstKind::MovF { width: Width::W128, dst: FpLoc::Reg(xt), src: FpLoc::Mem(xm) },
        );
        self.emit(
            st,
            InstKind::FpArith {
                op: FpAluOp::Mul,
                prec: self.prec(),
                packed: true,
                dst: xt,
                src: RM::Reg(xa),
            },
        );
        self.emit(
            st,
            InstKind::MovF { width: Width::W128, dst: FpLoc::Reg(yt), src: FpLoc::Mem(ym) },
        );
        self.emit(
            st,
            InstKind::FpArith {
                op: FpAluOp::Add,
                prec: self.prec(),
                packed: true,
                dst: yt,
                src: RM::Reg(xt),
            },
        );
        self.emit(
            st,
            InstKind::MovF { width: Width::W128, dst: FpLoc::Mem(ym), src: FpLoc::Reg(yt) },
        );
        self.emit(st, InstKind::IntAlu { op: IntOp::Add, dst: gi, src: GMI::Imm(lanes) });
        st.fp.free(xt.0);
        st.fp.free(yt.0);
        self.prog.block_mut(st.cur).term = Terminator::Jmp(head);
        st.cur = exit;
        st.int.free(gi.0);
        st.int.free(gn.0);
        st.fp.free(xa.0);
    }

    fn compile_fn(&mut self, fref: FnRef) {
        let decl = self.ir.fns[fref.0 as usize].clone();
        let body =
            decl.body.clone().unwrap_or_else(|| panic!("function {} never defined", decl.name));
        let func = self.fn_map[fref.0 as usize];
        let entry = self.prog.add_block(func);
        self.prog.funcs[func.0 as usize].entry = entry;

        let n_vars = decl.n_locals as i64;
        let spill_base = 8 * n_vars;
        let frame_raw = spill_base + 8 * 16; // 8 fp + 6 int spill slots, padded
        let frame = (frame_raw + 15) & !15;
        let is_entry = self.ir.entry == Some(fref);

        let mut st = FnState {
            func,
            cur: entry,
            var_off: (0..n_vars).map(|k| 8 * k).collect(),
            spill_base,
            frame,
            fp: Pool::new(&FP_TEMPS),
            int: Pool::new(&INT_TEMPS),
            is_entry,
            ret: decl.ret,
        };

        // Prologue: allocate frame, store parameters into their slots.
        self.emit(
            &mut st,
            InstKind::IntAlu { op: IntOp::Sub, dst: Gpr::RSP, src: GMI::Imm(frame) },
        );
        let (mut nf, mut ni) = (0usize, 0usize);
        for p in &decl.params {
            let m = self.var_mem(&st, *p);
            match p.ty {
                Ty::F64 => {
                    self.emit(
                        &mut st,
                        InstKind::MovF {
                            width: self.fp_w(),
                            dst: FpLoc::Mem(m),
                            src: FpLoc::Reg(Xmm(FP_ARGS[nf])),
                        },
                    );
                    nf += 1;
                }
                Ty::I64 => {
                    self.emit(
                        &mut st,
                        InstKind::MovI { dst: GM::Mem(m), src: GMI::Reg(Gpr(INT_ARGS[ni])) },
                    );
                    ni += 1;
                }
            }
        }

        self.compile_stmts(&mut st, &body);
        // Implicit return/halt if the body didn't end with one.
        self.emit_epilogue(&mut st);
        debug_assert_eq!(st.fp.live(), Vec::<u8>::new(), "leaked FP temps in {}", decl.name);
        debug_assert_eq!(st.int.live(), Vec::<u8>::new(), "leaked int temps in {}", decl.name);
    }
}

/// Compile an [`IrProgram`] to an executable [`Program`].
pub fn compile(ir: &IrProgram, opts: &CompileOptions) -> Program {
    let entry = ir.entry.expect("program has no entry function");
    let mut c = Compiler {
        ir,
        opts: opts.clone(),
        prog: Program::new(0),
        fn_map: Vec::new(),
        arr_addr: Vec::new(),
        const_pool: Vec::new(),
        const_base: 0,
        const_map: HashMap::new(),
    };

    // Modules and function shells first (so calls can be emitted).
    let mod_ids: Vec<_> = ir.modules.iter().map(|m| c.prog.add_module(m)).collect();
    for f in &ir.fns {
        let id = c.prog.add_function(mod_ids[f.module as usize], f.name.clone());
        c.fn_map.push(id);
    }
    c.layout_arrays();
    for k in 0..ir.fns.len() {
        c.compile_fn(FnRef(k as u32));
    }
    c.prog.entry = c.fn_map[entry.0 as usize];
    c.prog.globals = c.build_globals();
    c.prog.mem_size = c.prog.globals.len() + ir.stack_reserve;
    c.prog.validate().expect("compiler produced invalid program");
    c.prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpvm::{Vm, VmOptions};

    fn run_f64(ir: &IrProgram, syms: &[(&str, usize)]) -> Vec<Vec<f64>> {
        let p = compile(ir, &CompileOptions { fp: FpWidth::F64 });
        let mut vm = Vm::new(&p, VmOptions::default());
        let out = vm.run();
        assert!(out.ok(), "program trapped: {:?}", out.result);
        syms.iter().map(|(s, n)| vm.mem.read_f64_slice(p.symbol(s).unwrap(), *n).unwrap()).collect()
    }

    fn run_f32(ir: &IrProgram, syms: &[(&str, usize)]) -> Vec<Vec<f32>> {
        let p = compile(ir, &CompileOptions { fp: FpWidth::F32 });
        let mut vm = Vm::new(&p, VmOptions::default());
        let out = vm.run();
        assert!(out.ok(), "program trapped: {:?}", out.result);
        syms.iter().map(|(s, n)| vm.mem.read_f32_slice(p.symbol(s).unwrap(), *n).unwrap()).collect()
    }

    #[test]
    fn arithmetic_and_loop() {
        // out[0] = sum of i*1.5 for i in 0..10 = 67.5
        let mut ir = IrProgram::new("t");
        let out = ir.array_f64("out", 1);
        let main = ir.func("main", &[], None, |ir, fr, _| {
            let s = ir.local_f(fr);
            let ix = ir.local_i(fr);
            vec![
                set(s, f(0.0)),
                for_(ix, i(0), i(10), vec![set(s, fadd(v(s), fmul(itof(v(ix)), f(1.5))))]),
                st(out, i(0), v(s)),
            ]
        });
        ir.set_entry(main);
        assert_eq!(run_f64(&ir, &[("out", 1)])[0][0], 67.5);
    }

    #[test]
    fn if_else_and_while() {
        // classic collatz-step count for 27 (integer) mixed with fp guard
        let mut ir = IrProgram::new("t");
        let out = ir.array_i64("steps", 1);
        let main = ir.func("main", &[], None, |ir, fr, _| {
            let n = ir.local_i(fr);
            let c = ir.local_i(fr);
            vec![
                set(n, i(27)),
                set(c, i(0)),
                while_(
                    cmp(Cc::Ne, v(n), i(1)),
                    vec![
                        if_(
                            cmp(Cc::Eq, irem(v(n), i(2)), i(0)),
                            vec![set(n, idiv(v(n), i(2)))],
                            vec![set(n, iadd(imul(v(n), i(3)), i(1)))],
                        ),
                        set(c, iadd(v(c), i(1))),
                    ],
                ),
                st(out, i(0), v(c)),
            ]
        });
        ir.set_entry(main);
        let p = compile(&ir, &CompileOptions::default());
        let mut vm = Vm::new(&p, VmOptions::default());
        assert!(vm.run().ok());
        assert_eq!(vm.mem.read_i64_slice(p.symbol("steps").unwrap(), 1).unwrap()[0], 111);
    }

    #[test]
    fn function_calls_with_args_and_recursion() {
        // fib(10) computed recursively with int args; plus an fp helper.
        let mut ir = IrProgram::new("t");
        let out = ir.array_f64("out", 1);
        let (fib, fa) = ir.declare("fib", &[Ty::I64], Some(Ty::I64));
        ir.define(
            fib,
            vec![if_(
                cmp(Cc::Lt, v(fa[0]), i(2)),
                vec![ret(v(fa[0]))],
                vec![ret(iadd(
                    call(fib, vec![isub(v(fa[0]), i(1))]),
                    call(fib, vec![isub(v(fa[0]), i(2))]),
                ))],
            )],
        );
        let (half, ha) = ir.declare("half", &[Ty::F64], Some(Ty::F64));
        ir.define(half, vec![ret(fmul(v(ha[0]), f(0.5)))]);
        let main = ir.func("main", &[], None, |_, _, _| {
            vec![st(out, i(0), call(half, vec![itof(call(fib, vec![i(10)]))]))]
        });
        ir.set_entry(main);
        assert_eq!(run_f64(&ir, &[("out", 1)])[0][0], 27.5); // fib(10)=55
    }

    #[test]
    fn sqrt_math_and_conversions() {
        let mut ir = IrProgram::new("t");
        let out = ir.array_f64("out", 4);
        let main = ir.func("main", &[], None, |_, _, _| {
            vec![
                st(out, i(0), fsqrt(f(2.25))),
                st(out, i(1), fmath(fpvm::isa::MathFun::Exp, f(0.0))),
                st(out, i(2), fabs(f(-3.5))),
                st(out, i(3), itof(ftoi(f(7.9)))),
            ]
        });
        ir.set_entry(main);
        let r = &run_f64(&ir, &[("out", 4)])[0];
        assert_eq!(r, &[1.5, 1.0, 3.5, 7.0]);
    }

    #[test]
    fn f32_lowering_matches_f32_math() {
        // s = sum of 0.1f32 ten times (deliberately inexact in f32).
        let mut ir = IrProgram::new("t");
        let out = ir.array_f64("out", 1);
        let main = ir.func("main", &[], None, |ir, fr, _| {
            let s = ir.local_f(fr);
            let ix = ir.local_i(fr);
            vec![
                set(s, f(0.0)),
                for_(ix, i(0), i(10), vec![set(s, fadd(v(s), f(0.1)))]),
                st(out, i(0), v(s)),
            ]
        });
        ir.set_entry(main);
        let got = run_f32(&ir, &[("out", 1)])[0][0];
        let mut want = 0.0f32;
        for _ in 0..10 {
            want += 0.1f32;
        }
        assert_eq!(got.to_bits(), want.to_bits());
    }

    #[test]
    fn packed_axpy_both_widths() {
        let mut ir = IrProgram::new("t");
        let xs = ir.array_f64_init("x", vec![1.0, 2.0, 3.0, 4.0]);
        let ys = ir.array_f64_init("y", vec![10.0, 20.0, 30.0, 40.0]);
        let main = ir.func("main", &[], None, |_, _, _| {
            vec![Stmt::PackedAxpy { y: ys, a: f(2.0), x: xs, n: i(4) }]
        });
        ir.set_entry(main);
        assert_eq!(run_f64(&ir, &[("y", 4)])[0], vec![12.0, 24.0, 36.0, 48.0]);
        assert_eq!(run_f32(&ir, &[("y", 4)])[0], vec![12.0f32, 24.0, 36.0, 48.0]);
    }

    #[test]
    fn array_init_and_int_arrays() {
        let mut ir = IrProgram::new("t");
        let data = ir.array_f64_init("data", vec![2.0, 4.0, 8.0]);
        let idx = ir.array_i64_init("idx", vec![2, 0, 1]);
        let out = ir.array_f64("out", 3);
        let main = ir.func("main", &[], None, |ir, fr, _| {
            let k = ir.local_i(fr);
            vec![for_(k, i(0), i(3), vec![st(out, v(k), ld(data, ld(idx, v(k))))])]
        });
        ir.set_entry(main);
        assert_eq!(run_f64(&ir, &[("out", 3)])[0], vec![8.0, 2.0, 4.0]);
    }

    #[test]
    fn deep_fp_expression_uses_memory_operands() {
        // ((((a+b)*c)-d)/e) — check it compiles and computes correctly,
        // and that at least one FP instruction carries a memory operand.
        let mut ir = IrProgram::new("t");
        let out = ir.array_f64("out", 1);
        let main = ir.func("main", &[], None, |ir, fr, _| {
            let a = ir.local_f(fr);
            vec![
                set(a, f(1.0)),
                st(out, i(0), fdiv(fsub(fmul(fadd(v(a), f(2.0)), f(3.0)), f(4.0)), f(2.5))),
            ]
        });
        ir.set_entry(main);
        let p = compile(&ir, &CompileOptions::default());
        let has_mem_fp = p
            .iter_insns()
            .any(|(_, _, ins)| matches!(&ins.kind, InstKind::FpArith { src: RM::Mem(_), .. }));
        assert!(has_mem_fp, "expected folded memory operands");
        assert_eq!(run_f64(&ir, &[("out", 1)])[0][0], 2.0);
    }

    #[test]
    fn constants_are_interned() {
        let mut ir = IrProgram::new("t");
        let out = ir.array_f64("out", 1);
        let main = ir.func("main", &[], None, |_, _, _| {
            vec![st(out, i(0), fadd(fadd(f(1.5), f(1.5)), fadd(f(1.5), f(1.5))))]
        });
        ir.set_entry(main);
        let p = compile(&ir, &CompileOptions::default());
        // one array slot (8B) + one interned constant (8B)
        assert_eq!(p.globals.len(), 16 + 8);
        assert_eq!(run_f64(&ir, &[("out", 1)])[0][0], 6.0);
    }
}
