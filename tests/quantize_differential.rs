//! Differential properties for reduced-precision quantization.
//!
//! Two independent implementations are pitted against each other over
//! random bit patterns and random formats:
//!
//! - the bit-twiddling fast path the VM executes
//!   ([`fpvm::value::quantize_f32_bits`], the `FpTrunc` instruction);
//! - the exact-grid-arithmetic reference in [`mpfmt::softfloat`].
//!
//! On top of bit-equality of the quantizers, the suite checks the two
//! properties the emulation scheme rests on:
//!
//! - *no double rounding*: for operands already in a format satisfying
//!   `2p + 2 <= 24` (half, bfloat16), performing an arithmetic operation
//!   in binary32 and quantizing the result equals rounding the exact
//!   result directly to the format;
//! - *NaN-box preservation*: quantizing the payload of a flagged slot
//!   and re-flagging it leaves the slot a well-formed replaced value for
//!   every input, including payloads that quantize to zero, infinity,
//!   or NaN.

use fpvm::value::{is_replaced, quantize_f32_bits, FLAG_HI64, HI_MASK};
use mpfmt::softfloat::{quantize_f32_ref, quantize_f64_ref};
use proptest::prelude::*;

/// Random `(mantissa_bits, exp_bits)` drawn from the named formats and
/// the whole custom space.
fn any_format() -> impl Strategy<Value = (u32, u32)> {
    prop_oneof![
        Just((10u32, 5u32)), // half
        Just((7u32, 8u32)),  // bf16
        (0u32..24, 1u32..9), // any embeddable custom format
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8192))]

    #[test]
    fn fast_path_matches_softfloat_reference(
        bits in proptest::num::u32::ANY,
        fe in any_format(),
    ) {
        let (m, e) = fe;
        prop_assert_eq!((bits, m, e, quantize_f32_bits(bits, m, e)), (bits, m, e, quantize_f32_ref(bits, m, e)));
    }

    #[test]
    fn quantized_flagged_slots_stay_nan_boxed(
        payload in proptest::num::u32::ANY,
        fe in any_format(),
    ) {
        let (m, e) = fe;
        // The FpTrunc instruction's slot update: quantize the payload,
        // re-flag the 64-bit slot.
        let slot = FLAG_HI64 | quantize_f32_bits(payload, m, e) as u64;
        prop_assert!(is_replaced(slot));
        prop_assert_eq!(slot & HI_MASK, FLAG_HI64);
        // A NaN payload must still carry its bits (so a quantized slot
        // read back as f32 reproduces the f32 semantics exactly).
        if f32::from_bits(payload).is_nan() {
            prop_assert_eq!(slot as u32, payload);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    #[test]
    fn binary32_emulation_has_no_double_rounding(
        a_bits in proptest::num::u32::ANY,
        b_bits in proptest::num::u32::ANY,
        op in 0u32..4,
        fmt in prop_oneof![Just((10u32, 5u32)), Just((7u32, 8u32))],
    ) {
        let (m, e) = fmt;
        // Draw operands *in the format* (quantize random bit patterns).
        let a = f32::from_bits(quantize_f32_bits(a_bits, m, e));
        let b = f32::from_bits(quantize_f32_bits(b_bits, m, e));
        // The emulated path: binary32 op, then quantize (what the VM's
        // Single-precision snippet followed by FpTrunc computes).
        let r32 = match op {
            0 => a + b,
            1 => a - b,
            2 => a * b,
            _ => a / b,
        };
        let emulated = quantize_f32_bits(r32.to_bits(), m, e);
        // The reference: the exact result (f64 arithmetic is exact for
        // +,-,* on these operands and correctly rounded for /) rounded
        // once, directly to the format.
        let r64 = match op {
            0 => a as f64 + b as f64,
            1 => a as f64 - b as f64,
            2 => a as f64 * b as f64,
            _ => a as f64 / b as f64,
        };
        if r64.is_nan() {
            prop_assert!(f32::from_bits(emulated).is_nan());
        } else if r64.is_infinite() {
            prop_assert_eq!(
                f32::from_bits(emulated),
                if r64 > 0.0 { f32::INFINITY } else { f32::NEG_INFINITY }
            );
        } else if op == 3 && r64 != 0.0 && r64.abs() < 1.0e-36 {
            // Quotients deep in the binary32 subnormal range can round
            // twice (the no-double-rounding bound assumes no
            // intermediate underflow); the search never demotes such
            // instructions — the range guards refuse them.
        } else {
            prop_assert_eq!((a, b, op, m, e, emulated), (a, b, op, m, e, quantize_f64_ref(r64, m, e)));
        }
    }
}
