//! Cross-crate instrumentation invariants on real workloads: all-double
//! transparency, crash-on-miss, profile attribution, ignore handling.

use fpvm::{Vm, VmOptions};
use instrument::{rewrite, rewrite_all_double, RewriteOptions};
use mpconfig::{Config, Flag, StructureTree};
use workloads::{nas, nas_all, Class};

/// The all-double instrumented binary must reproduce the original's
/// outputs bit for bit (the paper's base-case transformation "does not
/// affect the semantics or results of the program").
#[test]
fn all_double_is_bit_transparent_on_every_workload() {
    for w in nas_all(Class::S) {
        let prog = w.program();
        let tree = StructureTree::build(prog);
        let (instr, stats) = rewrite_all_double(prog, &tree);
        assert!(stats.instrumented() > 0, "{}: nothing instrumented", w.name);

        let mut v0 = Vm::new(prog, w.vm_opts());
        assert!(v0.run().ok());
        let mut v1 = Vm::new(&instr, w.vm_opts());
        assert!(v1.run().ok(), "{}: instrumented run failed", w.name);
        for (sym, len) in &w.out_syms {
            let a = v0.mem.read_u64_slice(prog.symbol(sym).unwrap(), *len).unwrap();
            let b = v1.mem.read_u64_slice(prog.symbol(sym).unwrap(), *len).unwrap();
            assert_eq!(a, b, "{}: {sym} diverged under all-double instrumentation", w.name);
        }
    }
}

/// Replacing one hot instruction and ignoring its consumers crashes
/// loudly instead of silently corrupting results.
#[test]
fn crash_on_miss_fires_on_a_real_kernel() {
    let w = nas::mg(Class::S);
    let prog = w.program();
    let tree = StructureTree::build(prog);
    // find the hottest candidate and replace only it, ignoring the rest
    let profile =
        Vm::run_program(prog, VmOptions { profile: true, ..w.vm_opts() }).profile.unwrap();
    let hottest = tree.all_insns().into_iter().max_by_key(|&i| profile.count(i)).unwrap();
    let mut cfg = Config::new();
    for id in tree.all_insns() {
        cfg.set_insn(id, if id == hottest { Flag::Single } else { Flag::Ignore });
    }
    let (instr, stats) = rewrite(prog, &tree, &cfg, &RewriteOptions::default());
    assert_eq!(stats.single, 1);
    let out = Vm::run_program(&instr, w.vm_opts());
    assert!(
        matches!(out.result, Err(fpvm::Trap::FlaggedNanConsumed { .. })),
        "expected crash-on-miss, got {:?}",
        out.result
    );
}

/// Snippet instructions in a rewritten workload are attributed to their
/// origin, so instrumented profiles can be folded back onto the original
/// instruction set.
#[test]
fn instrumented_profiles_fold_back_to_original_instructions() {
    let w = nas::ep(Class::S);
    let prog = w.program();
    let tree = StructureTree::build(prog);
    let (instr, _) = rewrite_all_double(prog, &tree);
    let out = Vm::run_program(&instr, VmOptions { profile: true, ..w.vm_opts() });
    assert!(out.ok());
    let prof = out.profile.unwrap();
    // for each candidate: its own id no longer executes (it was replaced),
    // but snippet instructions attributed to it do.
    let mut per_origin = std::collections::HashMap::new();
    for (_, _, insn) in instr.iter_insns() {
        if let Some(origin) = insn.origin {
            *per_origin.entry(origin).or_insert(0u64) += prof.count(insn.id);
        }
    }
    let orig_prof =
        Vm::run_program(prog, VmOptions { profile: true, ..w.vm_opts() }).profile.unwrap();
    for id in tree.all_insns() {
        if orig_prof.count(id) > 0 {
            assert!(
                per_origin.get(&id).copied().unwrap_or(0) > 0,
                "no snippet executions attributed to hot candidate {id:?}"
            );
        }
    }
}

/// The `ignore` flag leaves instructions untouched even when the rest of
/// the module is replaced, and the EP RNG keeps producing the exact
/// 46-bit sequence.
#[test]
fn ignored_rng_stays_exact_under_full_replacement() {
    let w = nas::ep(Class::S);
    let prog = w.program();
    let tree = StructureTree::build(prog);
    let mut cfg = Config::new();
    for m in &tree.modules {
        for fun in &m.funcs {
            let flag = if fun.name == "randlc" { Flag::Ignore } else { Flag::Single };
            cfg.set_func(fun.id, flag);
        }
    }
    let (instr, stats) = rewrite(prog, &tree, &cfg, &RewriteOptions::default());
    assert!(stats.ignored > 0);
    let mut vm = Vm::new(&instr, w.vm_opts());
    assert!(vm.run().ok());
    // the RNG state must match the original run exactly
    let mut v0 = Vm::new(prog, w.vm_opts());
    assert!(v0.run().ok());
    let a = vm.mem.load_u64(prog.symbol("rngst").unwrap()).unwrap();
    let b = v0.mem.load_u64(prog.symbol("rngst").unwrap()).unwrap();
    assert_eq!(a, b, "ignored RNG state diverged");
}

/// Lean (dataflow) mode never changes results on any workload.
#[test]
fn lean_mode_is_semantics_preserving_everywhere() {
    for w in nas_all(Class::S) {
        let prog = w.program();
        let tree = StructureTree::build(prog);
        let (full, _) = rewrite(
            prog,
            &tree,
            &Config::new(),
            &RewriteOptions { mode: instrument::RewriteMode::AllDouble, lean: false },
        );
        let (lean, _) = rewrite(
            prog,
            &tree,
            &Config::new(),
            &RewriteOptions { mode: instrument::RewriteMode::AllDouble, lean: true },
        );
        let mut vf = Vm::new(&full, w.vm_opts());
        assert!(vf.run().ok());
        let mut vl = Vm::new(&lean, w.vm_opts());
        assert!(vl.run().ok());
        for (sym, len) in &w.out_syms {
            let a = vf.mem.read_u64_slice(prog.symbol(sym).unwrap(), *len).unwrap();
            let b = vl.mem.read_u64_slice(prog.symbol(sym).unwrap(), *len).unwrap();
            assert_eq!(a, b, "{}: lean mode changed {sym}", w.name);
        }
    }
}
