//! Differential property test for the shadow-value engine: attaching a
//! [`mpshadow::ShadowEngine`] to the pre-decoded fast path must leave
//! the *primary* execution bit-identical — same result (including the
//! exact trap), same statistics, same registers, same memory — on
//! random programs. The observer receives copies of values only; this
//! test is the executable form of that guarantee.

use fpir::{
    f, fabs, fadd, fdiv, fmax, fmin, fmul, for_, fsqrt, fsub, i, irem, itof, ld, set, st, v,
    CompileOptions, IrProgram,
};
use fpvm::exec::ExecImage;
use fpvm::{Program, Vm, VmOptions};
use mpshadow::ShadowEngine;
use proptest::collection::vec;
use proptest::prelude::*;

/// Build a numerically busy random program (same generator shape as
/// `tests/exec_differential.rs`): a loop applying a chain of randomly
/// chosen FP ops to an accumulator and elements of a random input array.
fn build_program(vals: &[f64], ops: &[u8], iters: i64) -> Program {
    let mut ir = IrProgram::new("rand");
    let n = vals.len() as i64;
    let xs = ir.array_f64_init("xs", vals.to_vec());
    let out = ir.array_f64("out", 2);
    let ops = ops.to_vec();
    let main = ir.func("main", &[], None, move |ir, fr, _| {
        let s = ir.local_f(fr);
        let t = ir.local_f(fr);
        let k = ir.local_i(fr);
        let mut body = vec![set(t, ld(xs, irem(v(k), i(n))))];
        for (j, &op) in ops.iter().enumerate() {
            let e = match op % 8 {
                0 => fadd(v(s), v(t)),
                1 => fsub(v(s), v(t)),
                2 => fmul(v(s), v(t)),
                3 => fdiv(v(s), v(t)),
                4 => fmin(v(s), v(t)),
                5 => fmax(v(s), fmul(v(t), itof(v(k)))),
                6 => fsqrt(fabs(v(s))),
                _ => fadd(fmul(v(s), f(0.5)), fdiv(v(t), f(1.0 + j as f64))),
            };
            body.push(set(s, e));
        }
        vec![
            set(s, f(1.0)),
            set(t, f(0.0)),
            for_(k, i(0), i(iters), body),
            st(out, i(0), v(s)),
            st(out, i(1), v(t)),
        ]
    });
    ir.set_entry(main);
    fpir::compile(&ir, &CompileOptions::default())
}

/// Run `p` once unobserved and once with a `ShadowEngine` attached, and
/// assert the primary architectural state is bit-identical.
fn assert_shadow_is_invisible(p: &Program, opts: &VmOptions) {
    let image = ExecImage::compile(p, &opts.cost);

    let mut plain_vm = Vm::new(p, opts.clone());
    let plain_out = plain_vm.run_image(&image);

    let mut engine = ShadowEngine::new(p.insn_id_bound());
    let mut obs_vm = Vm::new(p, opts.clone());
    let obs_out = obs_vm.run_image_observed(&image, &mut engine);

    assert_eq!(plain_out.result, obs_out.result, "result/trap diverges");
    assert_eq!(plain_out.stats.steps, obs_out.stats.steps, "steps diverge");
    assert_eq!(plain_out.stats.cycles, obs_out.stats.cycles, "cycles diverge");
    assert_eq!(plain_out.stats.fp_ops, obs_out.stats.fp_ops, "fp_ops diverge");
    assert_eq!(plain_vm.gpr, obs_vm.gpr, "gpr state diverges");
    assert_eq!(plain_vm.xmm, obs_vm.xmm, "xmm state diverges");
    let words = plain_vm.mem.len() / 8;
    assert_eq!(
        plain_vm.mem.read_u64_slice(0, words).unwrap(),
        obs_vm.mem.read_u64_slice(0, words).unwrap(),
        "memory diverges"
    );

    // The observed run must have produced a coherent profile: every
    // recorded instruction id lies inside the program's id bound.
    let profile = engine.into_profile();
    for (&id, s) in &profile.insns {
        assert!((id as usize) < p.insn_id_bound(), "stat for out-of-range insn {id}");
        assert!(s.count > 0 || s.cancels > 0, "empty stat retained for insn {id}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn shadow_observer_leaves_primary_state_bit_identical(
        vals in vec(-4.0f64..4.0, 1..8),
        ops in vec(0u8..255, 1..10),
        iters in 1i64..40,
        profile in any::<bool>(),
    ) {
        let p = build_program(&vals, &ops, iters);
        let opts = VmOptions { profile, ..VmOptions::default() };
        assert_shadow_is_invisible(&p, &opts);
    }

    #[test]
    fn shadow_observer_is_invisible_under_fuel_exhaustion(
        vals in vec(-2.0f64..2.0, 1..5),
        ops in vec(0u8..255, 1..6),
        fuel in 0u64..60,
    ) {
        let p = build_program(&vals, &ops, 25);
        let opts = VmOptions { fuel, ..VmOptions::default() };
        assert_shadow_is_invisible(&p, &opts);
    }
}
