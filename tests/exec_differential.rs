//! Differential property tests: the pre-decoded execution image
//! (`fpvm::exec`) must be bit-identical to the reference interpreter on
//! random programs — same results, same traps, same `RunStats`, same
//! final machine state — both on plain programs and on instrumented
//! (rewritten) ones, where crash-on-miss traps must agree too.

use fpir::{
    f, fabs, fadd, fdiv, fmax, fmin, fmul, for_, fsqrt, fsub, i, irem, itof, ld, set, st, v,
    CompileOptions, IrProgram,
};
use fpvm::exec::ExecImage;
use fpvm::{Program, Vm, VmOptions};
use instrument::{rewrite, RewriteOptions};
use mpconfig::{Config, Flag, StructureTree};
use proptest::collection::vec;
use proptest::prelude::*;

/// Build a numerically busy random program from generator data: a loop
/// over `iters` iterations applying a chain of randomly chosen FP ops to
/// an accumulator and elements of a random input array.
fn build_program(vals: &[f64], ops: &[u8], iters: i64) -> Program {
    let mut ir = IrProgram::new("rand");
    let n = vals.len() as i64;
    let xs = ir.array_f64_init("xs", vals.to_vec());
    let out = ir.array_f64("out", 2);
    let ops = ops.to_vec();
    let main = ir.func("main", &[], None, move |ir, fr, _| {
        let s = ir.local_f(fr);
        let t = ir.local_f(fr);
        let k = ir.local_i(fr);
        let mut body = vec![set(t, ld(xs, irem(v(k), i(n))))];
        for (j, &op) in ops.iter().enumerate() {
            let e = match op % 8 {
                0 => fadd(v(s), v(t)),
                1 => fsub(v(s), v(t)),
                2 => fmul(v(s), v(t)),
                3 => fdiv(v(s), v(t)),
                4 => fmin(v(s), v(t)),
                5 => fmax(v(s), fmul(v(t), itof(v(k)))),
                6 => fsqrt(fabs(v(s))),
                _ => fadd(fmul(v(s), f(0.5)), fdiv(v(t), f(1.0 + j as f64))),
            };
            body.push(set(s, e));
        }
        vec![
            set(s, f(1.0)),
            set(t, f(0.0)),
            for_(k, i(0), i(iters), body),
            st(out, i(0), v(s)),
            st(out, i(1), v(t)),
        ]
    });
    ir.set_entry(main);
    fpir::compile(&ir, &CompileOptions::default())
}

/// Run `p` through both engines and assert the outcomes are bit-identical:
/// result (including the exact trap), statistics, registers, memory, and
/// profile counts.
fn assert_engines_agree(p: &Program, opts: &VmOptions) {
    let mut ref_vm = Vm::new(p, opts.clone());
    let ref_out = ref_vm.run();
    let image = ExecImage::compile(p, &opts.cost);
    let mut fast_vm = Vm::new(p, opts.clone());
    let fast_out = fast_vm.run_image(&image);

    assert_eq!(ref_out.result, fast_out.result, "result/trap diverges");
    assert_eq!(ref_out.stats.steps, fast_out.stats.steps, "steps diverge");
    assert_eq!(ref_out.stats.cycles, fast_out.stats.cycles, "cycles diverge");
    assert_eq!(ref_out.stats.fp_ops, fast_out.stats.fp_ops, "fp_ops diverge");
    assert_eq!(ref_vm.gpr, fast_vm.gpr, "gpr state diverges");
    assert_eq!(ref_vm.xmm, fast_vm.xmm, "xmm state diverges");
    let words = ref_vm.mem.len() / 8;
    assert_eq!(
        ref_vm.mem.read_u64_slice(0, words).unwrap(),
        fast_vm.mem.read_u64_slice(0, words).unwrap(),
        "memory diverges"
    );
    match (ref_out.profile, fast_out.profile) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            for id in 0..p.insn_id_bound() {
                let id = fpvm::InsnId(id as u32);
                assert_eq!(a.count(id), b.count(id), "profile diverges at {id:?}");
            }
        }
        _ => panic!("one engine produced a profile, the other did not"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fast_path_matches_reference_on_random_programs(
        vals in vec(-4.0f64..4.0, 1..8),
        ops in vec(0u8..255, 1..10),
        iters in 1i64..40,
        profile in any::<bool>(),
    ) {
        let p = build_program(&vals, &ops, iters);
        let opts = VmOptions { profile, ..VmOptions::default() };
        assert_engines_agree(&p, &opts);
    }

    #[test]
    fn fast_path_matches_reference_under_fuel_exhaustion(
        vals in vec(-2.0f64..2.0, 1..5),
        ops in vec(0u8..255, 1..6),
        fuel in 0u64..60,
    ) {
        let p = build_program(&vals, &ops, 25);
        let opts = VmOptions { fuel, ..VmOptions::default() };
        assert_engines_agree(&p, &opts);
    }

    #[test]
    fn fast_path_matches_reference_on_instrumented_programs(
        vals in vec(-4.0f64..4.0, 1..6),
        ops in vec(0u8..255, 1..8),
        iters in 1i64..20,
        flags in vec(0u8..3, 64),
    ) {
        let p = build_program(&vals, &ops, iters);
        let tree = StructureTree::build(&p);
        // A random mixed configuration: single/double/ignore per candidate.
        // Ignore next to single can produce crash-on-miss traps, which both
        // engines must report identically (same trap, same instruction id).
        let mut cfg = Config::new();
        for (j, id) in tree.all_insns().into_iter().enumerate() {
            let fl = match flags[j % flags.len()] {
                0 => Flag::Single,
                1 => Flag::Double,
                _ => Flag::Ignore,
            };
            cfg.set_insn(id, fl);
        }
        let (q, _) = rewrite(&p, &tree, &cfg, &RewriteOptions::default());
        assert_engines_agree(&q, &VmOptions::default());
    }
}
