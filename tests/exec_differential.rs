//! Differential property tests: the pre-decoded execution image
//! (`fpvm::exec`) and both tiers of the compiled backend
//! (`fpvm::compiled` — fused regions and pure threaded code) must be
//! bit-identical to the reference interpreter on random programs — same
//! results, same traps, same `RunStats`, same final machine state, same
//! profile — both on plain programs and on instrumented (rewritten)
//! ones, where crash-on-miss traps must agree too. A fixed hand-built
//! corpus additionally pins down every `InstKind` (and the trap paths)
//! deterministically, independent of proptest generation.

use fpir::{
    f, fabs, fadd, fdiv, fmax, fmin, fmul, for_, fsqrt, fsub, i, irem, itof, ld, set, st, v,
    CompileOptions, IrProgram,
};
use fpvm::exec::ExecImage;
use fpvm::{CompiledImage, Program, Vm, VmOptions};
use instrument::{rewrite, RewriteOptions};
use mpconfig::{Config, Flag, StructureTree};
use proptest::collection::vec;
use proptest::prelude::*;

/// Build a numerically busy random program from generator data: a loop
/// over `iters` iterations applying a chain of randomly chosen FP ops to
/// an accumulator and elements of a random input array.
fn build_program(vals: &[f64], ops: &[u8], iters: i64) -> Program {
    let mut ir = IrProgram::new("rand");
    let n = vals.len() as i64;
    let xs = ir.array_f64_init("xs", vals.to_vec());
    let out = ir.array_f64("out", 2);
    let ops = ops.to_vec();
    let main = ir.func("main", &[], None, move |ir, fr, _| {
        let s = ir.local_f(fr);
        let t = ir.local_f(fr);
        let k = ir.local_i(fr);
        let mut body = vec![set(t, ld(xs, irem(v(k), i(n))))];
        for (j, &op) in ops.iter().enumerate() {
            let e = match op % 8 {
                0 => fadd(v(s), v(t)),
                1 => fsub(v(s), v(t)),
                2 => fmul(v(s), v(t)),
                3 => fdiv(v(s), v(t)),
                4 => fmin(v(s), v(t)),
                5 => fmax(v(s), fmul(v(t), itof(v(k)))),
                6 => fsqrt(fabs(v(s))),
                _ => fadd(fmul(v(s), f(0.5)), fdiv(v(t), f(1.0 + j as f64))),
            };
            body.push(set(s, e));
        }
        vec![
            set(s, f(1.0)),
            set(t, f(0.0)),
            for_(k, i(0), i(iters), body),
            st(out, i(0), v(s)),
            st(out, i(1), v(t)),
        ]
    });
    ir.set_entry(main);
    fpir::compile(&ir, &CompileOptions::default())
}

/// Run `p` through every engine — reference interpreter, fast image,
/// compiled (fused tier), compiled (threaded tier) — and assert all
/// outcomes are bit-identical: result (including the exact trap),
/// statistics, registers, memory, and profile counts.
fn assert_engines_agree(p: &Program, opts: &VmOptions) {
    let mut ref_vm = Vm::new(p, opts.clone());
    let ref_out = ref_vm.run();
    let image = ExecImage::compile(p, &opts.cost);
    let cimg = CompiledImage::from_image(&image);

    let mut fast_vm = Vm::new(p, opts.clone());
    let fast_out = fast_vm.run_image(&image);
    let mut comp_vm = Vm::new(p, opts.clone());
    let comp_out = comp_vm.run_compiled(&cimg);
    let mut thr_vm = Vm::new(p, opts.clone());
    let thr_out = thr_vm.run_compiled_threaded(&cimg);

    let engines = [
        ("fast", &fast_vm, &fast_out),
        ("compiled", &comp_vm, &comp_out),
        ("threaded", &thr_vm, &thr_out),
    ];
    for (name, vm, out) in engines {
        assert_eq!(ref_out.result, out.result, "{name}: result/trap diverges");
        assert_eq!(ref_out.stats.steps, out.stats.steps, "{name}: steps diverge");
        assert_eq!(ref_out.stats.cycles, out.stats.cycles, "{name}: cycles diverge");
        assert_eq!(ref_out.stats.fp_ops, out.stats.fp_ops, "{name}: fp_ops diverge");
        assert_eq!(ref_vm.gpr, vm.gpr, "{name}: gpr state diverges");
        assert_eq!(ref_vm.xmm, vm.xmm, "{name}: xmm state diverges");
        let words = ref_vm.mem.len() / 8;
        assert_eq!(
            ref_vm.mem.read_u64_slice(0, words).unwrap(),
            vm.mem.read_u64_slice(0, words).unwrap(),
            "{name}: memory diverges"
        );
        match (&ref_out.profile, &out.profile) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                for id in 0..p.insn_id_bound() {
                    let id = fpvm::InsnId(id as u32);
                    assert_eq!(a.count(id), b.count(id), "{name}: profile diverges at {id:?}");
                }
            }
            _ => panic!("{name}: one engine produced a profile, the other did not"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fast_path_matches_reference_on_random_programs(
        vals in vec(-4.0f64..4.0, 1..8),
        ops in vec(0u8..255, 1..10),
        iters in 1i64..40,
        profile in any::<bool>(),
    ) {
        let p = build_program(&vals, &ops, iters);
        let opts = VmOptions { profile, ..VmOptions::default() };
        assert_engines_agree(&p, &opts);
    }

    #[test]
    fn fast_path_matches_reference_under_fuel_exhaustion(
        vals in vec(-2.0f64..2.0, 1..5),
        ops in vec(0u8..255, 1..6),
        fuel in 0u64..60,
    ) {
        let p = build_program(&vals, &ops, 25);
        let opts = VmOptions { fuel, ..VmOptions::default() };
        assert_engines_agree(&p, &opts);
    }

    #[test]
    fn fast_path_matches_reference_on_instrumented_programs(
        vals in vec(-4.0f64..4.0, 1..6),
        ops in vec(0u8..255, 1..8),
        iters in 1i64..20,
        flags in vec(0u8..3, 64),
    ) {
        let p = build_program(&vals, &ops, iters);
        let tree = StructureTree::build(&p);
        // A random mixed configuration: single/double/ignore per candidate.
        // Ignore next to single can produce crash-on-miss traps, which both
        // engines must report identically (same trap, same instruction id).
        let mut cfg = Config::new();
        for (j, id) in tree.all_insns().into_iter().enumerate() {
            let fl = match flags[j % flags.len()] {
                0 => Flag::Single,
                1 => Flag::Double,
                _ => Flag::Ignore,
            };
            cfg.set_insn(id, fl);
        }
        let (q, _) = rewrite(&p, &tree, &cfg, &RewriteOptions::default());
        assert_engines_agree(&q, &VmOptions::default());
    }
}

// ---------------------------------------------------------------------------
// Fixed-seed regression corpus: deterministic hand-built programs that
// exercise every `InstKind` variant (and the trap paths), so backend
// coverage never depends on what proptest happens to generate.
// ---------------------------------------------------------------------------

use fpvm::{
    Cond, FpAluOp, FpLoc, Gpr, InstKind, IntOp, MathFun, MemRef, Prec, Terminator, Width, Xmm, GM,
    GMI, RM,
};

/// A kitchen-sink program touching every instruction kind: all FP ALU
/// ops (scalar/packed, single/double), sqrt, every math intrinsic, both
/// compares, every conversion, all move forms and widths, lane
/// extract/insert, every integer ALU op, lea in every addressing mode,
/// push/pop, call/ret, nop, and all terminator kinds.
fn kitchen_sink() -> Program {
    let mut g = Vec::new();
    for v in [2.25f64, -3.5, 1.75, 9.0, 0.5, 4.0, 6.25, 2.0] {
        g.extend_from_slice(&v.to_le_bytes());
    }
    g.extend_from_slice(&1.5f32.to_le_bytes());
    g.extend_from_slice(&(-0.75f32).to_le_bytes());
    g.extend_from_slice(&0.0625f64.to_le_bytes());

    let mut p = Program::new(1 << 14);
    let m = p.add_module("corpus");
    let fmain = p.add_function(m, "main");
    let finc = p.add_function(m, "inc");

    let bi = p.add_block(finc);
    p.funcs[finc.0 as usize].entry = bi;
    p.push_insn(
        bi,
        InstKind::FpArith {
            op: FpAluOp::Add,
            prec: Prec::Double,
            packed: false,
            dst: Xmm(0),
            src: RM::Reg(Xmm(1)),
        },
    );
    p.block_mut(bi).term = Terminator::Ret;

    let b0 = p.add_block(fmain);
    let b_odd = p.add_block(fmain);
    let b_even = p.add_block(fmain);
    let b_j1 = p.add_block(fmain);
    let b_lt = p.add_block(fmain);
    let b_ge = p.add_block(fmain);
    let b_j2 = p.add_block(fmain);
    let b_gt = p.add_block(fmain);
    let b_le = p.add_block(fmain);
    let b_done = p.add_block(fmain);
    p.funcs[fmain.0 as usize].entry = b0;
    p.entry = fmain;
    p.globals = g;

    let arith = |op, prec, packed, dst, src| InstKind::FpArith { op, prec, packed, dst, src };

    // Integer setup + every lea addressing mode.
    p.push_insn(b0, InstKind::MovI { dst: GM::Reg(Gpr(1)), src: GMI::Imm(8) });
    p.push_insn(b0, InstKind::Lea { dst: Gpr(2), mem: MemRef::abs(16) });
    p.push_insn(b0, InstKind::Lea { dst: Gpr(3), mem: MemRef::base_disp(Gpr(1), 16) });
    p.push_insn(b0, InstKind::Lea { dst: Gpr(4), mem: MemRef::base_index(Gpr(1), Gpr(1), 2, 8) });
    p.push_insn(
        b0,
        InstKind::Lea {
            dst: Gpr(5),
            mem: MemRef { base: None, index: Some((Gpr(1), 4)), disp: 8 },
        },
    );
    // Integer moves in every direction.
    p.push_insn(b0, InstKind::MovI { dst: GM::Reg(Gpr(6)), src: GMI::Mem(MemRef::abs(0)) });
    p.push_insn(b0, InstKind::MovI { dst: GM::Mem(MemRef::abs(256)), src: GMI::Reg(Gpr(6)) });
    p.push_insn(
        b0,
        InstKind::MovI { dst: GM::Mem(MemRef::base_disp(Gpr(1), 256)), src: GMI::Imm(-99) },
    );
    // FP loads: every width and addressing shape.
    p.push_insn(
        b0,
        InstKind::MovF {
            width: Width::W64,
            dst: FpLoc::Reg(Xmm(0)),
            src: FpLoc::Mem(MemRef::abs(0)),
        },
    );
    p.push_insn(
        b0,
        InstKind::MovF {
            width: Width::W64,
            dst: FpLoc::Reg(Xmm(1)),
            src: FpLoc::Mem(MemRef::base_disp(Gpr(1), 0)),
        },
    );
    p.push_insn(
        b0,
        InstKind::MovF {
            width: Width::W32,
            dst: FpLoc::Reg(Xmm(3)),
            src: FpLoc::Mem(MemRef::abs(64)),
        },
    );
    p.push_insn(
        b0,
        InstKind::MovF {
            width: Width::W128,
            dst: FpLoc::Reg(Xmm(7)),
            src: FpLoc::Mem(MemRef::abs(32)),
        },
    );
    p.push_insn(
        b0,
        InstKind::MovF { width: Width::W64, dst: FpLoc::Reg(Xmm(2)), src: FpLoc::Reg(Xmm(0)) },
    );
    // Scalar double ALU: all six ops, register and memory sources.
    p.push_insn(b0, arith(FpAluOp::Add, Prec::Double, false, Xmm(0), RM::Reg(Xmm(1))));
    p.push_insn(b0, arith(FpAluOp::Sub, Prec::Double, false, Xmm(0), RM::Reg(Xmm(1))));
    p.push_insn(b0, arith(FpAluOp::Mul, Prec::Double, false, Xmm(0), RM::Mem(MemRef::abs(16))));
    p.push_insn(
        b0,
        arith(FpAluOp::Div, Prec::Double, false, Xmm(0), RM::Mem(MemRef::base_disp(Gpr(1), 16))),
    );
    p.push_insn(b0, arith(FpAluOp::Min, Prec::Double, false, Xmm(0), RM::Reg(Xmm(2))));
    p.push_insn(b0, arith(FpAluOp::Max, Prec::Double, false, Xmm(0), RM::Mem(MemRef::abs(56))));
    // The load→arith→store idiom the fused tier recognizes.
    p.push_insn(
        b0,
        InstKind::MovF {
            width: Width::W64,
            dst: FpLoc::Reg(Xmm(4)),
            src: FpLoc::Mem(MemRef::abs(24)),
        },
    );
    p.push_insn(b0, arith(FpAluOp::Mul, Prec::Double, false, Xmm(2), RM::Reg(Xmm(4))));
    p.push_insn(
        b0,
        InstKind::MovF {
            width: Width::W64,
            dst: FpLoc::Mem(MemRef::abs(264)),
            src: FpLoc::Reg(Xmm(2)),
        },
    );
    // Sqrt and math intrinsics (double), sqrt(|x|) kept NaN-free and a
    // negative sqrt deliberately producing a NaN both engines must share.
    p.push_insn(
        b0,
        InstKind::FpSqrt {
            prec: Prec::Double,
            packed: false,
            dst: Xmm(5),
            src: RM::Mem(MemRef::abs(24)),
        },
    );
    p.push_insn(
        b0,
        InstKind::FpSqrt { prec: Prec::Double, packed: false, dst: Xmm(6), src: RM::Reg(Xmm(1)) },
    );
    for fun in [MathFun::Sin, MathFun::Cos, MathFun::Exp, MathFun::Log, MathFun::Abs, MathFun::Neg]
    {
        p.push_insn(
            b0,
            InstKind::FpMath { fun, prec: Prec::Double, dst: Xmm(5), src: RM::Reg(Xmm(5)) },
        );
    }
    p.push_insn(
        b0,
        InstKind::FpMath {
            fun: MathFun::Abs,
            prec: Prec::Single,
            dst: Xmm(3),
            src: RM::Reg(Xmm(3)),
        },
    );
    // Conversions, both directions and precisions.
    p.push_insn(b0, InstKind::CvtF2F { to: Prec::Single, dst: Xmm(8), src: RM::Reg(Xmm(0)) });
    p.push_insn(b0, InstKind::CvtF2F { to: Prec::Double, dst: Xmm(9), src: RM::Reg(Xmm(8)) });
    p.push_insn(b0, InstKind::CvtI2F { to: Prec::Double, dst: Xmm(10), src: GMI::Reg(Gpr(1)) });
    p.push_insn(b0, InstKind::CvtI2F { to: Prec::Single, dst: Xmm(11), src: GMI::Imm(-7) });
    p.push_insn(b0, InstKind::CvtF2I { from: Prec::Double, dst: Gpr(7), src: RM::Reg(Xmm(5)) });
    p.push_insn(b0, InstKind::CvtF2I { from: Prec::Single, dst: Gpr(8), src: RM::Reg(Xmm(3)) });
    // Single-precision ALU and sqrt.
    p.push_insn(b0, arith(FpAluOp::Add, Prec::Single, false, Xmm(3), RM::Reg(Xmm(11))));
    p.push_insn(b0, arith(FpAluOp::Div, Prec::Single, false, Xmm(3), RM::Mem(MemRef::abs(68))));
    p.push_insn(
        b0,
        InstKind::FpSqrt { prec: Prec::Single, packed: false, dst: Xmm(3), src: RM::Reg(Xmm(3)) },
    );
    // Packed forms, double and single.
    p.push_insn(b0, arith(FpAluOp::Add, Prec::Double, true, Xmm(7), RM::Mem(MemRef::abs(48))));
    p.push_insn(
        b0,
        InstKind::FpSqrt { prec: Prec::Double, packed: true, dst: Xmm(12), src: RM::Reg(Xmm(7)) },
    );
    p.push_insn(b0, arith(FpAluOp::Mul, Prec::Single, true, Xmm(7), RM::Reg(Xmm(7))));
    p.push_insn(
        b0,
        InstKind::FpSqrt { prec: Prec::Single, packed: true, dst: Xmm(13), src: RM::Reg(Xmm(7)) },
    );
    // Lane extract/insert, both lanes.
    p.push_insn(b0, InstKind::PExtrQ { dst: Gpr(9), src: Xmm(12), lane: 0 });
    p.push_insn(b0, InstKind::PExtrQ { dst: Gpr(10), src: Xmm(12), lane: 1 });
    p.push_insn(b0, InstKind::PInsrQ { dst: Xmm(14), src: Gpr(10), lane: 0 });
    p.push_insn(b0, InstKind::PInsrQ { dst: Xmm(14), src: Gpr(9), lane: 1 });
    // Reduced-precision quantize-and-reflag, several formats and both lanes.
    p.push_insn(b0, InstKind::FpTrunc { mant: 10, exp: 5, dst: Xmm(14), lane: 0 });
    p.push_insn(b0, InstKind::FpTrunc { mant: 7, exp: 8, dst: Xmm(14), lane: 1 });
    p.push_insn(b0, InstKind::FpTrunc { mant: 3, exp: 4, dst: Xmm(14), lane: 0 });
    // Every integer ALU op.
    p.push_insn(b0, InstKind::MovI { dst: GM::Reg(Gpr(11)), src: GMI::Imm(1000) });
    p.push_insn(b0, InstKind::IntAlu { op: IntOp::Add, dst: Gpr(11), src: GMI::Reg(Gpr(1)) });
    p.push_insn(b0, InstKind::IntAlu { op: IntOp::Sub, dst: Gpr(11), src: GMI::Imm(3) });
    p.push_insn(b0, InstKind::IntAlu { op: IntOp::Mul, dst: Gpr(11), src: GMI::Imm(7) });
    p.push_insn(b0, InstKind::IntAlu { op: IntOp::Div, dst: Gpr(11), src: GMI::Imm(11) });
    p.push_insn(b0, InstKind::IntAlu { op: IntOp::Rem, dst: Gpr(11), src: GMI::Imm(-13) });
    p.push_insn(b0, InstKind::IntAlu { op: IntOp::And, dst: Gpr(11), src: GMI::Imm(0x7fff) });
    p.push_insn(b0, InstKind::IntAlu { op: IntOp::Or, dst: Gpr(11), src: GMI::Imm(0x1010) });
    p.push_insn(b0, InstKind::IntAlu { op: IntOp::Xor, dst: Gpr(11), src: GMI::Reg(Gpr(6)) });
    p.push_insn(b0, InstKind::IntAlu { op: IntOp::Shl, dst: Gpr(11), src: GMI::Imm(3) });
    p.push_insn(b0, InstKind::IntAlu { op: IntOp::Shr, dst: Gpr(11), src: GMI::Imm(2) });
    p.push_insn(b0, InstKind::IntAlu { op: IntOp::Sar, dst: Gpr(11), src: GMI::Imm(1) });
    p.push_insn(
        b0,
        InstKind::IntAlu { op: IntOp::Div, dst: Gpr(11), src: GMI::Mem(MemRef::abs(0)) },
    );
    // Stack ops.
    p.push_insn(b0, InstKind::Push { src: Gpr(11) });
    p.push_insn(b0, InstKind::Push { src: Gpr(1) });
    p.push_insn(b0, InstKind::Pop { dst: Gpr(12) });
    p.push_insn(b0, InstKind::Pop { dst: Gpr(13) });
    p.push_insn(b0, InstKind::Nop);
    // test + branch (fused test-br idiom).
    p.push_insn(b0, InstKind::Test { lhs: Gpr(11), src: GMI::Imm(1) });
    p.block_mut(b0).term = Terminator::Br { cond: Cond::Ne, then_: b_odd, else_: b_even };

    p.push_insn(b_odd, InstKind::MovI { dst: GM::Reg(Gpr(14)), src: GMI::Imm(111) });
    p.block_mut(b_odd).term = Terminator::Jmp(b_j1);
    p.push_insn(b_even, InstKind::MovI { dst: GM::Reg(Gpr(14)), src: GMI::Imm(222) });
    p.block_mut(b_even).term = Terminator::Jmp(b_j1);

    // cmp + branch (fused cmp-br idiom).
    p.push_insn(b_j1, InstKind::Cmp { lhs: Gpr(14), src: GMI::Imm(200) });
    p.block_mut(b_j1).term = Terminator::Br { cond: Cond::Lt, then_: b_lt, else_: b_ge };
    p.push_insn(b_lt, InstKind::IntAlu { op: IntOp::Add, dst: Gpr(14), src: GMI::Imm(1) });
    p.block_mut(b_lt).term = Terminator::Jmp(b_j2);
    p.push_insn(b_ge, InstKind::IntAlu { op: IntOp::Sub, dst: Gpr(14), src: GMI::Imm(1) });
    p.block_mut(b_ge).term = Terminator::Jmp(b_j2);

    // ucomi + branch (fused ucomi-br idiom), then a call and stores.
    p.push_insn(b_j2, InstKind::FpUcomi { prec: Prec::Double, lhs: Xmm(0), src: RM::Reg(Xmm(1)) });
    p.block_mut(b_j2).term = Terminator::Br { cond: Cond::Above, then_: b_gt, else_: b_le };
    p.push_insn(
        b_gt,
        InstKind::FpUcomi { prec: Prec::Single, lhs: Xmm(3), src: RM::Mem(MemRef::abs(64)) },
    );
    p.block_mut(b_gt).term = Terminator::Jmp(b_done);
    p.push_insn(b_le, InstKind::FpUcomi { prec: Prec::Single, lhs: Xmm(3), src: RM::Reg(Xmm(11)) });
    p.block_mut(b_le).term = Terminator::Jmp(b_done);

    p.push_insn(b_done, InstKind::Call { func: finc });
    p.push_insn(
        b_done,
        InstKind::MovF {
            width: Width::W64,
            dst: FpLoc::Mem(MemRef::abs(272)),
            src: FpLoc::Reg(Xmm(0)),
        },
    );
    p.push_insn(
        b_done,
        InstKind::MovF {
            width: Width::W32,
            dst: FpLoc::Mem(MemRef::abs(280)),
            src: FpLoc::Reg(Xmm(3)),
        },
    );
    p.push_insn(
        b_done,
        InstKind::MovF {
            width: Width::W128,
            dst: FpLoc::Mem(MemRef::abs(288)),
            src: FpLoc::Reg(Xmm(13)),
        },
    );
    p.push_insn(b_done, InstKind::MovI { dst: GM::Mem(MemRef::abs(304)), src: GMI::Reg(Gpr(14)) });
    p.block_mut(b_done).term = Terminator::Halt;
    p
}

#[test]
fn corpus_covers_every_inst_kind() {
    let p = kitchen_sink();
    let mut kinds = std::collections::HashSet::new();
    for f in &p.funcs {
        for &b in &f.blocks {
            for insn in &p.block(b).insns {
                kinds.insert(std::mem::discriminant(&insn.kind));
            }
        }
    }
    // InstKind currently has 20 variants; if one is added, this corpus
    // must grow with it.
    assert_eq!(kinds.len(), 20, "corpus no longer covers every InstKind");
}

#[test]
fn corpus_agrees_across_engines() {
    let p = kitchen_sink();
    assert_engines_agree(&p, &VmOptions::default());
    assert_engines_agree(&p, &VmOptions { profile: true, ..VmOptions::default() });
}

#[test]
fn corpus_agrees_at_every_fuel_boundary() {
    let p = kitchen_sink();
    // Walk fuel through the whole program so exhaustion lands on every
    // op — including mid-fused-region, where the compiled backend must
    // fall back without over- or under-counting.
    let full = Vm::new(&p, VmOptions::default()).run().stats.steps;
    for fuel in 0..=full {
        assert_engines_agree(&p, &VmOptions { fuel, ..VmOptions::default() });
    }
}

#[test]
fn corpus_trap_paths_agree() {
    // Division by zero inside a straight-line region.
    let mut p = Program::new(1 << 12);
    let m = p.add_module("t");
    let f = p.add_function(m, "main");
    let b = p.add_block(f);
    p.funcs[f.0 as usize].entry = b;
    p.entry = f;
    p.push_insn(b, InstKind::MovI { dst: GM::Reg(Gpr(1)), src: GMI::Imm(0) });
    p.push_insn(b, InstKind::MovI { dst: GM::Reg(Gpr(2)), src: GMI::Imm(5) });
    p.push_insn(b, InstKind::IntAlu { op: IntOp::Div, dst: Gpr(2), src: GMI::Reg(Gpr(1)) });
    p.push_insn(b, InstKind::Nop);
    p.block_mut(b).term = Terminator::Halt;
    assert_engines_agree(&p, &VmOptions::default());

    // Out-of-bounds load mid-region.
    let mut p = Program::new(1 << 12);
    let m = p.add_module("t");
    let f = p.add_function(m, "main");
    let b = p.add_block(f);
    p.funcs[f.0 as usize].entry = b;
    p.entry = f;
    p.push_insn(b, InstKind::MovI { dst: GM::Reg(Gpr(1)), src: GMI::Imm(1 << 30) });
    p.push_insn(
        b,
        InstKind::MovF {
            width: Width::W64,
            dst: FpLoc::Reg(Xmm(0)),
            src: FpLoc::Mem(MemRef::base_disp(Gpr(1), 0)),
        },
    );
    p.push_insn(b, InstKind::Nop);
    p.block_mut(b).term = Terminator::Halt;
    assert_engines_agree(&p, &VmOptions::default());

    // Crash-on-miss: consuming a flagged (replaced) double must trap
    // with the same instruction id everywhere.
    let mut p = Program::new(1 << 12);
    let m = p.add_module("t");
    let f = p.add_function(m, "main");
    let b = p.add_block(f);
    p.funcs[f.0 as usize].entry = b;
    p.entry = f;
    p.globals = fpvm::value::replace(1.5).to_le_bytes().to_vec();
    p.push_insn(
        b,
        InstKind::MovF {
            width: Width::W64,
            dst: FpLoc::Reg(Xmm(0)),
            src: FpLoc::Mem(MemRef::abs(0)),
        },
    );
    p.push_insn(
        b,
        InstKind::FpArith {
            op: FpAluOp::Add,
            prec: Prec::Double,
            packed: false,
            dst: Xmm(0),
            src: RM::Reg(Xmm(0)),
        },
    );
    p.block_mut(b).term = Terminator::Halt;
    assert_engines_agree(&p, &VmOptions::default());

    // Unbounded recursion must hit the call-depth trap identically.
    let mut p = Program::new(1 << 12);
    let m = p.add_module("t");
    let f = p.add_function(m, "main");
    let b = p.add_block(f);
    p.funcs[f.0 as usize].entry = b;
    p.entry = f;
    p.push_insn(b, InstKind::Call { func: f });
    p.block_mut(b).term = Terminator::Halt;
    assert_engines_agree(&p, &VmOptions::default());
}
