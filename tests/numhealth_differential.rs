//! Differential property tests for the numerical-health observer
//! (`fpvm::exec::NumObserver`).
//!
//! Two claims are proven here:
//!
//! - *arming changes nothing*: a run with a live observer attached
//!   (`Vm::run_image_numhealth` + `mptrace::NumProfiler`) is
//!   bit-identical — result, trap, stats, registers, memory, profile —
//!   to the unarmed run on **every** backend (reference interpreter,
//!   fast image, compiled fused, compiled threaded). This is what makes
//!   the "armed runs take the observed fast path" fallback in
//!   `mixedprec` sound: whichever backend the unarmed run would have
//!   used, the armed one reproduces its outcome exactly;
//! - *the hooks actually fire*: on programs built to misbehave, the
//!   profiler records the expected NaN/saturation/flush events, so the
//!   zero-cost gate cannot silently compile the instrumentation out of
//!   the armed path too.
//!
//! The unarmed-hook-monomorphizes-away half of the contract (the
//! `NoopNumObserver` gate) is covered by `run_image` itself being the
//! reference point here, plus the `{ep,cg}.orig.numhealth` rows of
//! `benches/interp_throughput.rs` staying within noise of the plain
//! rows.

use fpir::{
    f, fabs, fadd, fdiv, fmax, fmin, fmul, for_, fsqrt, fsub, i, irem, itof, ld, set, st, v,
    CompileOptions, IrProgram,
};
use fpvm::exec::ExecImage;
use fpvm::{CompiledImage, Program, Vm, VmOptions};
use instrument::{rewrite, RewriteOptions};
use mpconfig::{Config, Flag, StructureTree};
use mptrace::numprof::NumProfiler;
use proptest::collection::vec;
use proptest::prelude::*;

/// A numerically busy random program: a loop applying a chain of
/// randomly chosen FP ops to an accumulator and a random input array
/// (same shape as `exec_differential.rs`).
fn build_program(vals: &[f64], ops: &[u8], iters: i64) -> Program {
    let mut ir = IrProgram::new("rand");
    let n = vals.len() as i64;
    let xs = ir.array_f64_init("xs", vals.to_vec());
    let out = ir.array_f64("out", 2);
    let ops = ops.to_vec();
    let main = ir.func("main", &[], None, move |ir, fr, _| {
        let s = ir.local_f(fr);
        let t = ir.local_f(fr);
        let k = ir.local_i(fr);
        let mut body = vec![set(t, ld(xs, irem(v(k), i(n))))];
        for (j, &op) in ops.iter().enumerate() {
            let e = match op % 8 {
                0 => fadd(v(s), v(t)),
                1 => fsub(v(s), v(t)),
                2 => fmul(v(s), v(t)),
                3 => fdiv(v(s), v(t)),
                4 => fmin(v(s), v(t)),
                5 => fmax(v(s), fmul(v(t), itof(v(k)))),
                6 => fsqrt(fabs(v(s))),
                _ => fadd(fmul(v(s), f(0.5)), fdiv(v(t), f(1.0 + j as f64))),
            };
            body.push(set(s, e));
        }
        vec![
            set(s, f(1.0)),
            set(t, f(0.0)),
            for_(k, i(0), i(iters), body),
            st(out, i(0), v(s)),
            st(out, i(1), v(t)),
        ]
    });
    ir.set_entry(main);
    fpir::compile(&ir, &CompileOptions::default())
}

/// Run `p` armed (observed fast path + live profiler) and unarmed on
/// every engine, and assert the armed run is bit-identical to each:
/// result (including the exact trap), statistics, registers, memory,
/// and profile. Returns the profiler for hook-liveness assertions.
fn assert_armed_is_bit_identical(p: &Program, opts: &VmOptions) -> NumProfiler {
    let image = ExecImage::compile(p, &opts.cost);
    let cimg = CompiledImage::from_image(&image);

    let mut prof = NumProfiler::new(p.insn_id_bound());
    let mut armed_vm = Vm::new(p, opts.clone());
    let armed_out = armed_vm.run_image_numhealth(&image, &mut prof);

    let mut ref_vm = Vm::new(p, opts.clone());
    let ref_out = ref_vm.run();
    let mut fast_vm = Vm::new(p, opts.clone());
    let fast_out = fast_vm.run_image(&image);
    let mut comp_vm = Vm::new(p, opts.clone());
    let comp_out = comp_vm.run_compiled(&cimg);
    let mut thr_vm = Vm::new(p, opts.clone());
    let thr_out = thr_vm.run_compiled_threaded(&cimg);

    let engines = [
        ("interp", &ref_vm, &ref_out),
        ("fast", &fast_vm, &fast_out),
        ("compiled", &comp_vm, &comp_out),
        ("threaded", &thr_vm, &thr_out),
    ];
    for (name, vm, out) in engines {
        assert_eq!(armed_out.result, out.result, "{name}: result/trap diverges from armed run");
        assert_eq!(armed_out.stats.steps, out.stats.steps, "{name}: steps diverge");
        assert_eq!(armed_out.stats.cycles, out.stats.cycles, "{name}: cycles diverge");
        assert_eq!(armed_out.stats.fp_ops, out.stats.fp_ops, "{name}: fp_ops diverge");
        assert_eq!(armed_vm.gpr, vm.gpr, "{name}: gpr state diverges");
        assert_eq!(armed_vm.xmm, vm.xmm, "{name}: xmm state diverges");
        let words = armed_vm.mem.len() / 8;
        assert_eq!(
            armed_vm.mem.read_u64_slice(0, words).unwrap(),
            vm.mem.read_u64_slice(0, words).unwrap(),
            "{name}: memory diverges"
        );
        match (&armed_out.profile, &out.profile) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                for id in 0..p.insn_id_bound() {
                    let id = fpvm::InsnId(id as u32);
                    assert_eq!(a.count(id), b.count(id), "{name}: profile diverges at {id:?}");
                }
            }
            _ => panic!("{name}: one engine produced a profile, the other did not"),
        }
    }
    prof
}

/// Rewrite `p` so every candidate carries `flag`, then run the armed
/// differential on the instrumented program.
fn instrumented(p: &Program, flag: Flag) -> Program {
    let tree = StructureTree::build(p);
    let mut cfg = Config::new();
    for id in tree.all_insns() {
        cfg.set_insn(id, flag);
    }
    let (q, _) = rewrite(p, &tree, &cfg, &RewriteOptions::default());
    q
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn armed_run_is_bit_identical_on_random_programs(
        vals in vec(-4.0f64..4.0, 1..8),
        ops in vec(0u8..255, 1..10),
        iters in 1i64..40,
        profile in any::<bool>(),
    ) {
        let p = build_program(&vals, &ops, iters);
        let opts = VmOptions { profile, ..VmOptions::default() };
        let prof = assert_armed_is_bit_identical(&p, &opts);
        let total: u64 = prof.iter().map(|(_, e)| e.total).sum();
        prop_assert!(total > 0, "observer saw no scalar FP results");
    }

    #[test]
    fn armed_run_is_bit_identical_under_fuel_exhaustion(
        vals in vec(-2.0f64..2.0, 1..5),
        ops in vec(0u8..255, 1..6),
        fuel in 0u64..60,
    ) {
        let p = build_program(&vals, &ops, 25);
        let opts = VmOptions { fuel, ..VmOptions::default() };
        assert_armed_is_bit_identical(&p, &opts);
    }

    #[test]
    fn armed_run_is_bit_identical_on_instrumented_programs(
        vals in vec(-4.0f64..4.0, 1..6),
        ops in vec(0u8..255, 1..8),
        iters in 1i64..20,
        which in 0u8..4,
    ) {
        let p = build_program(&vals, &ops, iters);
        // Uniform reduced-format configs drive the FpTrunc quantize
        // hook; half/bf16/custom cover both named fast paths and the
        // generic one.
        let flag = match which {
            0 => Flag::Single,
            1 => Flag::Half,
            2 => Flag::Bf16,
            _ => Flag::Custom { mantissa_bits: 3, exp_bits: 4 },
        };
        let q = instrumented(&p, flag);
        let prof = assert_armed_is_bit_identical(&q, &VmOptions::default());
        if which != 0 {
            let quantizes: u64 = prof.iter_quant().map(|(_, _, e)| e.total).sum();
            prop_assert!(quantizes > 0, "reduced-format run recorded no quantizes");
        }
    }
}

/// A deterministic misbehaving program: huge and tiny magnitudes plus a
/// NaN-producing `0/0`-shaped chain, rewritten to half — so saturation,
/// flush-to-zero, and NaN production all provably reach the profiler.
#[test]
fn hooks_observe_saturation_flush_and_nan_at_half() {
    let mut ir = IrProgram::new("sick");
    let xs = ir.array_f64_init("xs", vec![3.0e6, 1.0e-7, 0.0]);
    let out = ir.array_f64("out", 3);
    let main = ir.func("main", &[], None, move |ir, fr, _| {
        let a = ir.local_f(fr);
        let b = ir.local_f(fr);
        vec![
            // 3e6 * 1 saturates half (max ~65504) after quantization.
            set(a, fmul(ld(xs, i(0)), f(1.0))),
            st(out, i(0), v(a)),
            // 1e-7 * 1e-7 is far below half's smallest subnormal: flush.
            set(b, fmul(ld(xs, i(1)), ld(xs, i(1)))),
            st(out, i(1), v(b)),
            // inf - inf: a NaN produced from non-NaN operands.
            set(a, fsub(fdiv(f(1.0), ld(xs, i(2))), fdiv(f(2.0), ld(xs, i(2))))),
            st(out, i(2), v(a)),
        ]
    });
    ir.set_entry(main);
    let p = fpir::compile(&ir, &CompileOptions::default());
    let q = instrumented(&p, Flag::Half);
    let prof = assert_armed_is_bit_identical(&q, &VmOptions::default());

    let mut sat = 0;
    let mut flush = 0;
    for (_, fmt, e) in prof.iter_quant() {
        assert_eq!(fmt, mpfmt::Format::Half, "only half quantizes expected");
        sat += e.sat;
        flush += e.flush;
    }
    let nan: u64 = prof.iter().map(|(_, e)| e.nan).sum();
    assert!(sat > 0, "no saturation observed: {prof:?}");
    assert!(flush > 0, "no flush-to-zero observed: {prof:?}");
    assert!(nan > 0, "no NaN production observed: {prof:?}");
}
