//! §3.1 integration test: for every RNG-free workload, the instrumented
//! all-single binary and the manually converted (whole-program f32)
//! binary must produce bit-for-bit identical outputs.

use fpvm::Vm;
use instrument::{rewrite, RewriteMode, RewriteOptions};
use mpconfig::{Config, Flag, StructureTree};
use workloads::{amg::amg, nas, Class, Workload};

fn assert_bitexact(w: &Workload) {
    let prog = w.program();
    let tree = StructureTree::build(prog);
    let mut cfg = Config::new();
    for m in &tree.modules {
        cfg.set_module(m.id, Flag::Single);
    }
    for lean in [false, true] {
        let (instr, stats) =
            rewrite(prog, &tree, &cfg, &RewriteOptions { mode: RewriteMode::Config, lean });
        assert_eq!(stats.single, tree.candidate_count(), "{}: not everything replaced", w.name);
        let mut vm = Vm::new(&instr, w.vm_opts());
        assert!(vm.run().ok(), "{}: instrumented-single run failed", w.name);

        let manual = w.compile_f32();
        let mut vm32 = Vm::new(&manual, w.vm_opts());
        assert!(vm32.run().ok(), "{}: manual f32 run failed", w.name);

        for (sym, len) in &w.out_syms {
            let flagged = vm.mem.read_u64_slice(prog.symbol(sym).unwrap(), *len).unwrap();
            let singles = vm32.mem.read_f32_slice(manual.symbol(sym).unwrap(), *len).unwrap();
            for (k, (fa, fb)) in flagged.iter().zip(&singles).enumerate() {
                assert_eq!(
                    *fa as u32,
                    fb.to_bits(),
                    "{} lean={lean}: {sym}[{k}] payload {:e} vs manual {:e}",
                    w.name,
                    f32::from_bits(*fa as u32),
                    fb
                );
            }
        }
    }
}

#[test]
fn bt_is_bitexact() {
    assert_bitexact(&nas::bt(Class::S));
}

#[test]
fn cg_is_bitexact() {
    assert_bitexact(&nas::cg(Class::S));
}

#[test]
fn ft_is_bitexact() {
    assert_bitexact(&nas::ft(Class::S));
}

#[test]
fn lu_is_bitexact() {
    assert_bitexact(&nas::lu(Class::S));
}

#[test]
fn mg_is_bitexact() {
    assert_bitexact(&nas::mg(Class::S));
}

#[test]
fn sp_is_bitexact() {
    assert_bitexact(&nas::sp(Class::S));
}

#[test]
fn amg_is_bitexact() {
    assert_bitexact(&amg(Class::S));
}

#[test]
fn slu_is_bitexact() {
    assert_bitexact(&workloads::slu::slu(Class::S).wl);
}

#[test]
fn ep_manual_conversion_diverges_by_design() {
    // EP's FP-trick RNG is destroyed by blind conversion: the manually
    // converted binary and the instrumented one (which keeps the ignored
    // RNG in double) must NOT agree — this is exactly why the paper's
    // semi-automated Fortran conversion needed hand fixes.
    let w = nas::ep(Class::S);
    let prog = w.program();
    let tree = StructureTree::build(prog);
    // replace every function except the RNG, which keeps its ignore flag
    // (a module-level flag would override it, so flag per function)
    let mut cfg = Config::new();
    for m in &tree.modules {
        for fun in &m.funcs {
            let flag = if fun.name == "randlc" { Flag::Ignore } else { Flag::Single };
            cfg.set_func(fun.id, flag);
        }
    }
    let (instr, _) = rewrite(prog, &tree, &cfg, &RewriteOptions::default());
    let mut vm = Vm::new(&instr, w.vm_opts());
    assert!(vm.run().ok());
    let manual = w.compile_f32();
    let mut vm32 = Vm::new(&manual, w.vm_opts());
    assert!(vm32.run().ok());
    let a = vm.mem.read_f64_slice(prog.symbol("sums").unwrap(), 2).unwrap();
    let b = vm32.mem.read_f32_slice(manual.symbol("sums").unwrap(), 2).unwrap();
    assert_ne!((a[0] as f32).to_bits(), b[0].to_bits(), "RNG divergence expected");
}
