//! Executor robustness and event-schema tests: round-trip serialization
//! of every event variant, and end-to-end searches under deterministic
//! fault injection — transient faults must be absorbed (same final
//! configuration as the fault-free run), persistent faults must
//! quarantine, and the event log must reflect both.

use fpvm::isa::{FpAluOp, InstKind, Prec, Terminator, Xmm, RM};
use fpvm::{InsnId, Program};
use mpconfig::{Config, Flag, StructureTree};
use mpsearch::events::{Event, EventLog, Record};
use mpsearch::{
    search, search_observed, Evaluator, ExecPolicy, FaultPlan, SearchHooks, SearchOptions,
    SearchReport, Verdict,
};
use std::time::Duration;

/// Owns a program alongside the structure tree borrowed from it.
struct TreeBox {
    _prog: Program,
    tree: StructureTree,
}

/// A synthetic program: `n_funcs` functions of `insns_per_func` scalar
/// FP adds each (same shape as the unit tests inside `mpsearch`).
fn make_prog(n_funcs: usize, insns_per_func: usize) -> TreeBox {
    let mut p = Program::new(1 << 12);
    let m = p.add_module("m");
    for k in 0..n_funcs {
        let f = p.add_function(m, format!("f{k}"));
        let b = p.add_block(f);
        p.funcs[f.0 as usize].entry = b;
        if k == 0 {
            p.entry = f;
        }
        for _ in 0..insns_per_func {
            p.push_insn(
                b,
                InstKind::FpArith {
                    op: FpAluOp::Add,
                    prec: Prec::Double,
                    packed: false,
                    dst: Xmm(0),
                    src: RM::Reg(Xmm(1)),
                },
            );
        }
        p.block_mut(b).term = Terminator::Ret;
    }
    let tree = StructureTree::build(&p);
    TreeBox { _prog: p, tree }
}

/// Passes iff no "sensitive" instruction is replaced.
struct SetEval {
    tb: TreeBox,
    sensitive: Vec<InsnId>,
}

impl Evaluator for SetEval {
    fn evaluate(&self, cfg: &Config) -> bool {
        !self.sensitive.iter().any(|&i| cfg.effective(&self.tb.tree, i) == Flag::Single)
    }
}

fn serial_opts() -> SearchOptions {
    SearchOptions {
        threads: 1,
        prioritize: false,
        exec: ExecPolicy { backoff: Duration::ZERO, ..Default::default() },
        ..Default::default()
    }
}

fn replaced(report: &SearchReport, tree: &StructureTree) -> Vec<u32> {
    let mut v: Vec<u32> =
        report.final_config.replaced_insns(tree).into_iter().map(|i| i.0).collect();
    v.sort_unstable();
    v
}

#[test]
fn event_log_survives_a_poisoned_lock() {
    use std::io::Write;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Mutex};

    // A sink that panics on its first write. The panic unwinds out of
    // `emit` while the log's writer mutex is held, poisoning it — the
    // same shape as an evaluator panicking under `catch_unwind` mid-run.
    struct PoisonOnce {
        armed: bool,
        buf: Arc<Mutex<Vec<u8>>>,
    }
    impl Write for PoisonOnce {
        fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
            if self.armed {
                self.armed = false;
                panic!("injected sink panic");
            }
            self.buf.lock().unwrap_or_else(|e| e.into_inner()).extend_from_slice(b);
            Ok(b.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let buf = Arc::new(Mutex::new(Vec::new()));
    let log = EventLog::to_writer(Box::new(PoisonOnce { armed: true, buf: buf.clone() }));
    let poisoned = catch_unwind(AssertUnwindSafe(|| {
        log.emit(Event::PhaseStarted { phase: "poisoned".into() });
    }));
    assert!(poisoned.is_err(), "first emit must panic through the sink");

    // Regression: this second emit used to panic on the PoisonError and
    // take the whole search down with it.
    log.emit(Event::PhaseFinished { phase: "recovered".into(), wall_us: 1 });
    log.flush();
    let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
    let rec = Record::parse(text.lines().next().expect("an event after the panic")).unwrap();
    assert!(
        matches!(rec.event, Event::PhaseFinished { ref phase, .. } if phase == "recovered"),
        "unexpected event: {rec:?}"
    );
}

#[test]
fn event_schema_round_trips_every_variant() {
    let label = "m.f0 [2 children] \"quoted\"\nline".to_string();
    let all = vec![
        Event::SearchStarted { bench: "ep.W".into(), candidates: 42, threads: 8 },
        Event::ConfigEnqueued { label: label.clone(), insns: 7, priority: 12345, depth: 3 },
        Event::EvalStarted { idx: 9, label: label.clone(), insns: 7 },
        Event::EvalFinished {
            idx: 9,
            label,
            attempt: 1,
            verdict: Verdict::Timeout,
            steps: 123456789,
            wall_us: 4242,
            cache_hit: true,
        },
        Event::Retry { idx: 9, attempt: 2, backoff_us: 2000 },
        Event::Quarantined { label: "m.f1".into(), wedged: 3 },
        Event::QueueDepth { depth: 11, in_flight: 4 },
        Event::PhaseStarted { phase: "bfs".into() },
        Event::PhaseFinished { phase: "bfs".into(), wall_us: 987654321 },
        Event::SearchFinished {
            tested: 100,
            passing: 12,
            timeouts: 1,
            crashes: 2,
            retries: 3,
            quarantined: 1,
            cache_hits: 17,
            wall_us: 5_000_000,
        },
    ];
    for (i, event) in all.into_iter().enumerate() {
        let rec = Record { t_us: i as u64 * 1000, event };
        let line = rec.to_json();
        assert!(!line.contains('\n'), "JSONL record must be one line: {line:?}");
        let back = Record::parse(&line)
            .unwrap_or_else(|e| panic!("round-trip parse failed for {line:?}: {e}"));
        assert_eq!(back, rec, "round-trip mismatch for {line:?}");
    }
    // every verdict survives the wire
    for v in Verdict::ALL {
        assert_eq!(Verdict::from_str(v.as_str()), Some(v));
    }
}

#[test]
fn transient_injected_faults_do_not_change_the_outcome() {
    let tb = make_prog(3, 4);
    let sensitive = vec![tb.tree.all_insns()[5]];
    let mk = || SetEval { tb: make_prog(3, 4), sensitive: sensitive.clone() };

    let clean = search(&tb.tree, &Config::new(), None, &mk(), &serial_opts());
    assert_eq!(clean.crashes, 0);
    assert_eq!(clean.timeouts, 0);

    // One forced panic and one simulated timeout, at fixed evaluation
    // indices. Both are transient (the fault fires once per index), so
    // the retry absorbs them.
    let (log, buf) = EventLog::in_memory();
    let hooks = SearchHooks {
        bench: "synthetic".into(),
        faults: FaultPlan { panic_at: vec![1], timeout_at: vec![3], ..Default::default() },
        events: Some(&log),
        ..Default::default()
    };
    let faulted = search_observed(&tb.tree, &Config::new(), None, &mk(), &serial_opts(), &hooks);

    assert_eq!(faulted.crashes, 1, "injected panic must be classified Crashed");
    assert_eq!(faulted.timeouts, 1, "injected timeout must be classified Timeout");
    assert_eq!(faulted.retries, 2, "each transient fault retries once");
    assert_eq!(faulted.quarantined, 0);
    assert_eq!(replaced(&faulted, &tb.tree), replaced(&clean, &tb.tree));
    assert_eq!(faulted.final_pass, clean.final_pass);
    assert_eq!(faulted.failed_insns, clean.failed_insns);
    assert_eq!(faulted.static_pct, clean.static_pct);

    // The event log tells the same story.
    drop(log);
    let bytes = buf.lock().unwrap().clone();
    let text = String::from_utf8(bytes).unwrap();
    let records: Vec<Record> =
        text.lines().map(|l| Record::parse(l).expect("malformed event line")).collect();
    assert!(matches!(records.first().map(|r| &r.event), Some(Event::SearchStarted { .. })));
    let mut crashed = 0;
    let mut timed_out = 0;
    for r in &records {
        if let Event::EvalFinished { verdict, .. } = r.event {
            match verdict {
                Verdict::Crashed => crashed += 1,
                Verdict::Timeout => timed_out += 1,
                _ => {}
            }
        }
    }
    assert_eq!(crashed, 1);
    assert_eq!(timed_out, 1);
    let last = records.last().expect("log must not be empty");
    match &last.event {
        Event::SearchFinished { crashes, timeouts, retries, tested, .. } => {
            assert_eq!(*crashes, faulted.crashes);
            assert_eq!(*timeouts, faulted.timeouts);
            assert_eq!(*retries, faulted.retries);
            assert_eq!(*tested, faulted.configs_tested);
        }
        other => panic!("final event must be search_finished, got {other:?}"),
    }
}

#[test]
fn repeatedly_wedging_config_is_quarantined() {
    let tb = make_prog(2, 4);
    let sensitive = vec![tb.tree.all_insns()[6]];
    let eval = SetEval { tb: make_prog(2, 4), sensitive };

    // Serial order: idx 0 tests the module (fails: contains the
    // sensitive insn), then idx 1..=3 are the three attempts of the
    // first function — all forced to panic, exhausting the retries.
    let (log, buf) = EventLog::in_memory();
    let hooks = SearchHooks {
        faults: FaultPlan { panic_at: vec![1, 2, 3], ..Default::default() },
        events: Some(&log),
        ..Default::default()
    };
    let report = search_observed(&tb.tree, &Config::new(), None, &eval, &serial_opts(), &hooks);

    assert_eq!(report.crashes, 3);
    // Quarantined once for the wedged function, and once more when its
    // (structurally distinct but effectively identical) single block is
    // re-encountered and short-circuited against the quarantine set.
    assert_eq!(report.quarantined, 2, "a config wedged on every attempt must quarantine");
    // The search still completes and still isolates the sensitive insn:
    // the quarantined aggregate folds into "failed" and is expanded.
    assert!(report.final_pass);
    assert_eq!(report.failed_insns, 1);

    drop(log);
    let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
    assert!(
        text.lines().any(|l| matches!(
            Record::parse(l).map(|r| r.event),
            Ok(Event::Quarantined { wedged: 3, .. })
        )),
        "expected a quarantined event with wedged=3"
    );
}

#[test]
fn natural_timeouts_are_not_retried_by_default() {
    // An injected fuel starvation produces a *real* FuelExhausted trap in
    // the VM; it is marked injected, so it retries and recovers. Natural
    // divergence (not injected) must not retry.
    use fpir::{f, fadd, for_, i, ld, set, st, v, CompileOptions, IrProgram};
    use fpvm::{Vm, VmOptions};
    use mpsearch::VmEvaluator;

    let mut ir = IrProgram::new("tiny");
    let xs = ir.array_f64_init("xs", (0..32).map(|k| k as f64).collect());
    let out = ir.array_f64("out", 1);
    let main = ir.func("main", &[], None, |ir, fr, _| {
        let a = ir.local_f(fr);
        let k = ir.local_i(fr);
        vec![
            set(a, f(0.0)),
            for_(k, i(0), i(32), vec![set(a, fadd(v(a), ld(xs, v(k))))]),
            st(out, i(0), v(a)),
        ]
    });
    ir.set_entry(main);
    let prog = fpir::compile(&ir, &CompileOptions::default());
    let tree = StructureTree::build(&prog);

    let mut vm = Vm::new(&prog, VmOptions::default());
    assert!(vm.run().ok());
    let sym = prog.symbol("out").unwrap();
    let want = vm.mem.read_f64_slice(sym, 1).unwrap()[0];

    let mk = || {
        VmEvaluator::new(&prog, &tree, move |vm: &Vm<'_>| {
            (vm.mem.read_f64_slice(sym, 1).unwrap()[0] - want).abs() < 1e-6
        })
    };

    let clean = search(&tree, &Config::new(), None, &mk(), &serial_opts());

    let eval = mk();
    let hooks = SearchHooks {
        faults: FaultPlan { fuel_starve_at: vec![0], ..Default::default() },
        ..Default::default()
    };
    let starved = search_observed(&tree, &Config::new(), None, &eval, &serial_opts(), &hooks);
    assert_eq!(starved.timeouts, 1, "starved run must classify as Timeout");
    assert!(starved.retries >= 1, "injected starvation is transient: must retry");
    assert_eq!(replaced(&starved, &tree), replaced(&clean, &tree));
    assert_eq!(starved.final_pass, clean.final_pass);
}
