//! Differential property test for the interpreter's const-gated step
//! hook: attaching an [`mptrace::profiler::InsnProfiler`] via
//! `run_image_profiled` must leave the primary execution bit-identical —
//! same result (including the exact trap), same statistics, same
//! registers, same memory — on random programs, and the profiler's
//! cycle/hit attribution must reconcile exactly with the run's
//! aggregate statistics. This is the executable form of the mptrace
//! overhead contract: the profiled loop only *reads* state the
//! interpreter already computed, and the unprofiled loop (exercised by
//! every other test in the suite via `run_image`) monomorphizes the
//! hook away entirely.

use fpir::{
    f, fabs, fadd, fdiv, fmax, fmin, fmul, for_, fsqrt, fsub, i, irem, itof, ld, set, st, v,
    CompileOptions, IrProgram,
};
use fpvm::exec::ExecImage;
use fpvm::{InsnId, Program, StepObserver, Vm, VmOptions};
use mptrace::profiler::InsnProfiler;
use proptest::collection::vec;
use proptest::prelude::*;

/// A step observer that counts *every* dispatched op, including the
/// synthetic ones (id `u32::MAX`) the `InsnProfiler` deliberately drops,
/// so the profiler's attribution can be reconciled exactly.
#[derive(Default)]
struct CountAll {
    steps: u64,
    cycles: u64,
    in_range_hits: u64,
    in_range_cycles: u64,
    bound: u32,
}

impl StepObserver for CountAll {
    const ENABLED: bool = true;
    fn step(&mut self, insn: InsnId, cost: u64) {
        self.steps += 1;
        self.cycles += cost;
        if insn.0 < self.bound {
            self.in_range_hits += 1;
            self.in_range_cycles += cost;
        }
    }
}

/// Build a numerically busy random program (same generator shape as
/// `tests/shadow_differential.rs`): a loop applying a chain of randomly
/// chosen FP ops to an accumulator and elements of a random input array.
fn build_program(vals: &[f64], ops: &[u8], iters: i64) -> Program {
    let mut ir = IrProgram::new("rand");
    let n = vals.len() as i64;
    let xs = ir.array_f64_init("xs", vals.to_vec());
    let out = ir.array_f64("out", 2);
    let ops = ops.to_vec();
    let main = ir.func("main", &[], None, move |ir, fr, _| {
        let s = ir.local_f(fr);
        let t = ir.local_f(fr);
        let k = ir.local_i(fr);
        let mut body = vec![set(t, ld(xs, irem(v(k), i(n))))];
        for (j, &op) in ops.iter().enumerate() {
            let e = match op % 8 {
                0 => fadd(v(s), v(t)),
                1 => fsub(v(s), v(t)),
                2 => fmul(v(s), v(t)),
                3 => fdiv(v(s), v(t)),
                4 => fmin(v(s), v(t)),
                5 => fmax(v(s), fmul(v(t), itof(v(k)))),
                6 => fsqrt(fabs(v(s))),
                _ => fadd(fmul(v(s), f(0.5)), fdiv(v(t), f(1.0 + j as f64))),
            };
            body.push(set(s, e));
        }
        vec![
            set(s, f(1.0)),
            set(t, f(0.0)),
            for_(k, i(0), i(iters), body),
            st(out, i(0), v(s)),
            st(out, i(1), v(t)),
        ]
    });
    ir.set_entry(main);
    fpir::compile(&ir, &CompileOptions::default())
}

/// Run `p` once unprofiled and once with an `InsnProfiler` attached, and
/// assert the primary architectural state is bit-identical while the
/// profiler reconciles with the run's aggregate statistics.
fn assert_profiler_is_invisible(p: &Program, opts: &VmOptions) {
    let image = ExecImage::compile(p, &opts.cost);

    let mut plain_vm = Vm::new(p, opts.clone());
    let plain_out = plain_vm.run_image(&image);

    let mut prof = InsnProfiler::new(p.insn_id_bound());
    let mut prof_vm = Vm::new(p, opts.clone());
    let prof_out = prof_vm.run_image_profiled(&image, &mut prof);

    assert_eq!(plain_out.result, prof_out.result, "result/trap diverges");
    assert_eq!(plain_out.stats.steps, prof_out.stats.steps, "steps diverge");
    assert_eq!(plain_out.stats.cycles, prof_out.stats.cycles, "cycles diverge");
    assert_eq!(plain_out.stats.fp_ops, prof_out.stats.fp_ops, "fp_ops diverge");
    assert_eq!(plain_vm.gpr, prof_vm.gpr, "gpr state diverges");
    assert_eq!(plain_vm.xmm, prof_vm.xmm, "xmm state diverges");
    let words = plain_vm.mem.len() / 8;
    assert_eq!(
        plain_vm.mem.read_u64_slice(0, words).unwrap(),
        prof_vm.mem.read_u64_slice(0, words).unwrap(),
        "memory diverges"
    );

    // The hook fires exactly once per dispatched op with that op's
    // modelled cost, so a count-everything observer must reproduce the
    // aggregate statistics exactly, and the profiler's attribution must
    // match the in-range portion of the dispatch stream.
    let mut all = CountAll { bound: p.insn_id_bound() as u32, ..CountAll::default() };
    let mut count_vm = Vm::new(p, opts.clone());
    let count_out = count_vm.run_image_profiled(&image, &mut all);
    assert_eq!(count_out.result, plain_out.result);
    assert_eq!(all.steps, count_out.stats.steps, "hook must fire once per retired step");
    assert_eq!(all.cycles, count_out.stats.cycles, "hook must see every modelled cycle");

    assert_eq!(prof.total_hits(), all.in_range_hits, "profiler hits != in-range dispatches");
    assert_eq!(prof.total_cycles(), all.in_range_cycles, "profiler cycles != in-range cost");
    for (id, s) in prof.iter() {
        assert!(s.hits > 0, "insn {id}: cycles attributed without a hit");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn step_profiler_leaves_primary_state_bit_identical(
        vals in vec(-4.0f64..4.0, 1..8),
        ops in vec(0u8..255, 1..10),
        iters in 1i64..40,
        profile in any::<bool>(),
    ) {
        let p = build_program(&vals, &ops, iters);
        let opts = VmOptions { profile, ..VmOptions::default() };
        assert_profiler_is_invisible(&p, &opts);
    }

    #[test]
    fn step_profiler_is_invisible_under_fuel_exhaustion(
        vals in vec(-2.0f64..2.0, 1..5),
        ops in vec(0u8..255, 1..6),
        fuel in 0u64..60,
    ) {
        let p = build_program(&vals, &ops, 25);
        let opts = VmOptions { fuel, ..VmOptions::default() };
        assert_profiler_is_invisible(&p, &opts);
    }
}
