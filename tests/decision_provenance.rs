//! Properties of the precision-decision provenance records
//! (`mpsearch::decisions`):
//!
//! - the JSONL wire format round-trips *byte-exactly* over arbitrary
//!   records — hostile strings, non-finite floats, every event kind —
//!   so a re-serialized `decisions.jsonl` is the same bytes;
//! - a torn final line (a writer killed mid-append) degrades to the
//!   parsed prefix plus a warning, never an error or silent data loss
//!   beyond the torn record;
//! - end to end, the records a real lattice search emits are consistent
//!   with its own `format_breakdown`: one record per instruction, the
//!   per-format counts agree, every replaced instruction carries a
//!   `passed` event at its final format, and every guard refusal names
//!   an observed range that actually violates the bound it cites.

use mixedprec::{jobspec, AnalysisOptions, AnalysisSystem, ShadowOptions};
use mpsearch::decisions::{self, DecisionEvent, DecisionRecord};
use mpsearch::{SearchOptions, Verdict};
use proptest::collection::vec;
use proptest::prelude::*;

/// Printable-ASCII strings including quotes and backslashes, so the
/// escaper is exercised.
fn any_text() -> impl Strategy<Value = String> {
    vec(0u8..95, 0..14).prop_map(|bs| bs.into_iter().map(|b| char::from(b + 0x20)).collect())
}

/// Floats including the non-finite values the wire format spells as
/// strings.
fn any_num() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(f64::NAN),
        Just(0.0f64),
        -1.0e12f64..1.0e12,
    ]
}

fn any_event() -> impl Strategy<Value = DecisionEvent> {
    prop_oneof![
        (0u32..4, any_text(), any_text()).prop_map(|(level, format, unit)| DecisionEvent::Passed {
            level,
            format,
            unit
        }),
        ((0u32..4, any_text(), any_text()), (0u8..5, any_num(), any::<bool>())).prop_map(
            |((level, format, unit), (v, err, has_err))| DecisionEvent::Failed {
                level,
                format,
                verdict: match v {
                    0 => Verdict::Pass,
                    1 => Verdict::Fail,
                    2 => Verdict::Timeout,
                    3 => Verdict::Crashed,
                    _ => Verdict::Quarantined,
                },
                unit,
                shadow_err: has_err.then_some(err),
            }
        ),
        ((any_text(), any_text()), (any_num(), any_num(), any_num())).prop_map(
            |((format, class), (max_abs, min_abs, bound))| DecisionEvent::GuardRefused {
                format,
                class,
                max_abs,
                min_abs,
                bound,
            }
        ),
        ((0u32..4, any_text()), (any_num(), any_num(), any_text())).prop_map(
            |((level, format), (err, threshold, unit))| DecisionEvent::ShadowPruned {
                level,
                format,
                err,
                threshold,
                unit,
            }
        ),
        any_text().prop_map(|unit| DecisionEvent::Dropped { unit }),
        Just(DecisionEvent::Ignored),
    ]
}

fn any_record() -> impl Strategy<Value = DecisionRecord> {
    ((0u32..1_000_000, 0u64..1 << 48), (any_text(), any_text(), any_text()), vec(any_event(), 0..5))
        .prop_map(|((insn, addr), (func, label, final_format), events)| DecisionRecord {
            insn,
            addr,
            func,
            label,
            final_format,
            events,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn jsonl_round_trip_is_byte_exact(records in vec(any_record(), 0..6)) {
        let text = decisions::to_jsonl(&records);
        let (parsed, warn) = decisions::from_jsonl_tolerant(&text).unwrap();
        prop_assert!(warn.is_none(), "clean text produced a warning: {warn:?}");
        prop_assert_eq!(parsed.len(), records.len());
        prop_assert_eq!(decisions::to_jsonl(&parsed), text);
    }

    #[test]
    fn torn_final_line_degrades_to_prefix_plus_warning(
        records in vec(any_record(), 1..5),
        cut in 1usize..20,
    ) {
        let text = decisions::to_jsonl(&records);
        // The wire format is pure ASCII (the escaper \u-escapes
        // everything else), so byte truncation is char-safe. A cut this
        // small can tear at most the final record.
        let torn = &text[..text.len().saturating_sub(cut)];
        let (parsed, warn) = decisions::from_jsonl_tolerant(torn).unwrap();
        if parsed.len() == records.len() {
            // Only the trailing newline was lost: nothing is torn.
            prop_assert!(warn.is_none(), "complete records warned: {warn:?}");
        } else {
            prop_assert_eq!(parsed.len(), records.len() - 1);
            prop_assert!(warn.is_some(), "lost a record without warning");
        }
        // The surviving prefix is byte-exact.
        prop_assert!(text.starts_with(&decisions::to_jsonl(&parsed)));
    }
}

/// End to end: run the real lattice search on `ep.S` at `--lattice=s,b`
/// (with the shadow oracle armed so range guards can refuse) and check
/// the decision records against the report's own summary of itself.
#[test]
fn ep_lattice_decisions_are_consistent_with_format_breakdown() {
    let workload = jobspec::build_workload("ep", jobspec::parse_class("s").unwrap()).unwrap();
    let opts = AnalysisOptions {
        search: SearchOptions {
            lattice: mpconfig::parse_lattice("s,b").unwrap(),
            threads: 2,
            ..Default::default()
        },
        shadow: ShadowOptions { prune: true, ..Default::default() },
        ..Default::default()
    };
    let sys = AnalysisSystem::with_options(workload, opts);
    let report = sys.run_search();
    let tree = sys.tree();

    // One record per structure-tree instruction, in tree order.
    assert_eq!(report.decisions.len(), tree.all_insns().len());

    // Per-format counts agree with the report's own breakdown.
    for (tok, count) in report.format_breakdown(tree) {
        let got = report.decisions.iter().filter(|r| r.final_format == tok).count();
        assert_eq!(got, count, "decision records disagree with breakdown for {tok:?}");
    }

    for r in &report.decisions {
        // Every replaced instruction can prove it: a `passed` event at
        // exactly the format it ended up in.
        if r.final_format != "d" && r.final_format != "i" {
            assert!(
                r.events.iter().any(
                    |e| matches!(e, DecisionEvent::Passed { format, .. } if *format == r.final_format)
                ),
                "insn {} is {} with no passed evidence: {:?}",
                r.insn,
                r.final_format,
                r.events
            );
        }
        // Every guard refusal names a range envelope that actually
        // violates the bound it cites.
        for e in &r.events {
            if let DecisionEvent::GuardRefused { format, class, max_abs, min_abs, bound } = e {
                assert!(!format.is_empty() && !class.is_empty(), "refusal lacks format/class");
                assert!(*bound > 0.0, "refusal with non-positive bound {bound}");
                assert!(
                    *max_abs > *bound || *min_abs < *bound,
                    "insn {}: refusal range [{min_abs}, {max_abs}] does not violate bound {bound}",
                    r.insn
                );
            }
        }
    }

    // The aggregate counter and the per-insn evidence tell one story.
    let refusal_events = report
        .decisions
        .iter()
        .flat_map(|r| &r.events)
        .filter(|e| matches!(e, DecisionEvent::GuardRefused { .. }))
        .count();
    if report.guard_refused == 0 {
        assert_eq!(refusal_events, 0, "refusal events without a guard_refused count");
    } else {
        assert!(refusal_events > 0, "guard_refused counted but no per-insn evidence");
    }
}
