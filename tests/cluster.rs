//! Integration tests of the intra-node rank runtime (the MPI analogue
//! used by the Fig. 8 experiments).

use fpvm::cluster::run_ranks;
use fpvm::VmOptions;
use instrument::rewrite_all_double;
use mpconfig::StructureTree;
use workloads::{nas, Class};

/// EP sharded across ranks: the concatenated rank results must reproduce
/// the single-rank totals when the shards partition the work (each rank
/// uses its own seed continuation here, so we check statistical sanity
/// and determinism rather than exact equality).
#[test]
fn ep_ranks_are_deterministic_and_sane() {
    let run = |nranks: usize| {
        let progs: Vec<_> = (0..nranks)
            .map(|_| nas::ep_sized(Class::S, 256 / nranks as i64).program().clone())
            .collect();
        let (outcome, partials) = run_ranks(
            nranks,
            &VmOptions::default(),
            |r| progs[r].clone(),
            |_, vm| {
                let p = &progs[0];
                vm.mem.read_f64_slice(p.symbol("sums").unwrap(), 2).unwrap()
            },
        );
        assert!(outcome.ok());
        partials
    };
    let a = run(4);
    let b = run(4);
    assert_eq!(a, b, "rank runs must be deterministic");
    for sums in &a {
        assert!(sums.iter().all(|v| v.is_finite()));
    }
}

/// Instrumented rank runs succeed and cost more per-rank steps.
#[test]
fn instrumented_ranks_carry_overhead() {
    let w = nas::mg_sized(Class::S, 32, 4);
    let orig = w.program().clone();
    let tree = StructureTree::build(&orig);
    let (instr, _) = rewrite_all_double(&orig, &tree);

    let (o, _) = run_ranks(4, &VmOptions::default(), |_| orig.clone(), |_, _| ());
    let (i, _) = run_ranks(4, &VmOptions::default(), |_| instr.clone(), |_, _| ());
    assert!(o.ok() && i.ok());
    assert!(i.total_steps() > o.total_steps());
    assert!(i.critical_steps() > o.critical_steps());
}

/// The cluster critical path (max rank steps) is bounded by the total.
#[test]
fn critical_path_invariant() {
    let w = nas::ft_sized(Class::S, 32);
    let prog = w.program().clone();
    for nranks in [1, 2, 3, 8] {
        let (c, _) = run_ranks(nranks, &VmOptions::default(), |_| prog.clone(), |_, _| ());
        assert!(c.ok());
        assert!(c.critical_steps() <= c.total_steps());
        assert!(c.critical_steps() * nranks as u64 >= c.total_steps());
    }
}
