//! Cache-invariance tests: the evaluation-pipeline optimizations (config
//! evaluation cache, incremental rewriter, fuel budget, fast-path
//! execution) must not change what `search()` decides — only how fast it
//! decides it.

use mixedprec::{AnalysisOptions, AnalysisSystem};
use mpsearch::{SearchOptions, SearchReport};
use workloads::{nas, Class};

fn run_search(
    make: fn(Class) -> workloads::Workload,
    eval_cache: bool,
) -> (SearchReport, Vec<u32>) {
    let sys = AnalysisSystem::with_options(
        make(Class::S),
        AnalysisOptions {
            search: SearchOptions { threads: 2, eval_cache, ..Default::default() },
            ..Default::default()
        },
    );
    let report = sys.run_search();
    let mut replaced: Vec<u32> =
        report.final_config.replaced_insns(sys.tree()).into_iter().map(|i| i.0).collect();
    replaced.sort_unstable();
    (report, replaced)
}

#[test]
fn eval_cache_does_not_change_search_outcomes() {
    for make in [nas::ep as fn(Class) -> workloads::Workload, nas::cg] {
        let (with_cache, replaced_on) = run_search(make, true);
        let (without, replaced_off) = run_search(make, false);
        assert_eq!(replaced_on, replaced_off, "replaced instruction sets diverge");
        assert_eq!(with_cache.final_pass, without.final_pass);
        assert_eq!(with_cache.candidates, without.candidates);
        assert_eq!(with_cache.failed_insns, without.failed_insns);
        assert_eq!(with_cache.static_pct, without.static_pct);
        assert_eq!(without.cache_hits, 0, "cache disabled but hits reported");
    }
}

#[test]
fn eval_cache_hits_on_repeated_effective_configs() {
    // The final union config repeats at least one trial on a fully (or
    // mostly) replaceable benchmark, so a cached search must record hits.
    let (report, _) = run_search(nas::ep, true);
    assert!(report.cache_hits > 0, "expected nonzero evaluation-cache hits");
}
