//! End-to-end pipeline integration tests: the full Fig.-2 flow on real
//! workloads, plus cross-crate config round-trips.

use mixedprec::{AnalysisOptions, AnalysisSystem};
use mpconfig::{parse_config, print_config, Flag};
use mpsearch::{SearchOptions, StopDepth};
use workloads::{nas, Class};

fn opts(threads: usize) -> AnalysisOptions {
    AnalysisOptions {
        search: SearchOptions { threads, ..Default::default() },
        ..Default::default()
    }
}

#[test]
fn cg_search_produces_consistent_report() {
    let sys = AnalysisSystem::with_options(nas::cg(Class::S), opts(2));
    let report = sys.run_search();
    assert!(report.candidates > 0);
    assert!(report.configs_tested >= 1);
    assert!(report.static_pct >= 0.0 && report.static_pct <= 100.0);
    assert!(report.dynamic_pct >= 0.0 && report.dynamic_pct <= 100.0);
    // replaced instructions reported = static pct of candidates
    let replaced = report.final_config.replaced_insns(sys.tree()).len();
    assert_eq!(report.failed_insns, report.candidates - replaced);
    // every passing unit's config must re-verify individually
    for u in report.passing.iter().take(3) {
        let mut cfg = sys.base_config().clone();
        for id in sys.tree().insns_under(u.node) {
            cfg.set_insn(id, Flag::Single);
        }
        // only exact unit configs (not split partitions) re-verify this way
        if u.insns == sys.tree().insns_under(u.node).len() {
            assert!(sys.evaluate(&cfg), "passing unit {} failed re-verification", u.label);
        }
    }
}

#[test]
fn final_config_round_trips_through_the_exchange_format() {
    let sys = AnalysisSystem::with_options(nas::mg(Class::S), opts(2));
    let report = sys.run_search();
    let text = print_config(sys.tree(), &report.final_config);
    let parsed = parse_config(sys.tree(), &text).expect("parse failure");
    assert_eq!(parsed, report.final_config);
}

#[test]
fn recommendation_config_text_mentions_all_functions() {
    let sys = AnalysisSystem::with_options(nas::bt(Class::S), opts(2));
    let rec = sys.recommend();
    for m in &sys.tree().modules {
        for fun in &m.funcs {
            assert!(
                rec.config_text.contains(&format!("{}()", fun.name)),
                "config text missing {}",
                fun.name
            );
        }
    }
    assert!(rec.modelled_speedup >= 1.0);
}

#[test]
fn stop_depth_trades_granularity_for_tests() {
    let fine = AnalysisSystem::with_options(
        nas::sp(Class::S),
        AnalysisOptions {
            search: SearchOptions { threads: 2, ..Default::default() },
            ..Default::default()
        },
    );
    let coarse = AnalysisSystem::with_options(
        nas::sp(Class::S),
        AnalysisOptions {
            search: SearchOptions {
                threads: 2,
                stop_depth: StopDepth::Function,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let rf = fine.run_search();
    let rc = coarse.run_search();
    assert!(rc.configs_tested <= rf.configs_tested);
    assert!(rc.static_pct <= rf.static_pct + 1e-9);
}

#[test]
fn evaluate_empty_config_always_passes() {
    // the un-instrumented program trivially verifies against itself
    let sys = AnalysisSystem::with_options(nas::ft(Class::S), opts(1));
    assert!(sys.evaluate(sys.base_config()));
}

#[test]
fn overhead_report_is_sane_across_workloads() {
    for w in [nas::bt(Class::S), nas::lu(Class::S), nas::sp(Class::S)] {
        let name = w.name.clone();
        let sys = AnalysisSystem::new(w);
        let o = sys.overhead_all_double();
        assert!(o.steps_x > 1.0, "{name}: no overhead measured");
        assert!(o.steps_x < 200.0, "{name}: overhead out of range: {}", o.steps_x);
    }
}

/// Acceptance: a lattice search on ep.S settles on a mixed
/// double/single/bf16 configuration that meets the tolerance (the
/// second composition phase backs out the failing pieces), with at
/// least one instruction demoted below single precision — and the
/// whole outcome is identical across the `fast` and `compiled`
/// backends. EP's default 1e-6 tolerance is too tight for any bf16
/// survivor on the tiny class-S sample, so this runs at the slightly
/// looser 1.5e-6 a user would pass with `--tol`.
#[test]
fn ep_lattice_search_demotes_below_single_identically_on_both_backends() {
    let run = |backend: fpvm::Backend| {
        let mut w = nas::ep(Class::S);
        w.tol = 1.5e-6;
        let sys = AnalysisSystem::with_options(
            w,
            AnalysisOptions {
                search: SearchOptions {
                    threads: 2,
                    second_phase: true,
                    lattice: vec![Flag::Single, Flag::Bf16],
                    ..Default::default()
                },
                backend,
                ..Default::default()
            },
        );
        let rec = sys.recommend();
        (rec.report.format_breakdown(sys.tree()), rec)
    };
    let (breakdown, rec) = run(fpvm::Backend::Fast);

    // The composed configuration meets the tolerance...
    assert!(rec.report.final_pass, "lattice recommendation does not verify");
    // ...and the executed program is genuinely mixed-precision:
    // something runs in double (a candidate left at `d`, or EP's
    // ignore-flagged RNG instructions, which always execute in
    // double), something went single, and at least one instruction
    // settled below single precision (bf16's 8-bit mantissa).
    let count = |tok: &str| breakdown.iter().find(|(t, _)| t == tok).map(|(_, n)| *n).unwrap_or(0);
    assert!(count("d") + count("i") >= 1, "nothing executes in double: {breakdown:?}");
    assert!(count("s") >= 1, "no instruction at single: {breakdown:?}");
    assert!(count("b") >= 1, "no instruction demoted below single: {breakdown:?}");

    // The search outcome must not depend on the execution backend.
    let (breakdown2, rec2) = run(fpvm::Backend::Compiled);
    assert_eq!(breakdown, breakdown2);
    assert_eq!(rec.report.candidates, rec2.report.candidates);
    assert_eq!(rec.report.configs_tested, rec2.report.configs_tested);
    assert_eq!(rec.report.static_pct, rec2.report.static_pct);
    assert_eq!(rec.report.dynamic_pct, rec2.report.dynamic_pct);
    assert_eq!(rec.report.final_pass, rec2.report.final_pass);
    assert_eq!(rec.config_text, rec2.config_text);
}
