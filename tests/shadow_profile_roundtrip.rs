//! Round-trip tests for the [`SensitivityProfile`] JSONL artifact: a
//! profile captured from a real workload run must survive
//! serialize → parse (and a file round-trip) *exactly* — every float
//! bit-identical — and the parser must reject damaged inputs, so a
//! profile written by `craft shadow` today can be trusted by a search
//! run tomorrow.

use fpvm::isa::InsnId;
use mpshadow::SensitivityProfile;
use workloads::Class;

/// A profile with real, messy floats (irrational divergences, huge and
/// tiny magnitudes) from an actual shadowed benchmark run.
fn captured_profile() -> SensitivityProfile {
    let w = workloads::nas::cg(Class::S);
    let report = mpshadow::shadow_run(w.program(), w.vm_opts());
    let profile = report.profile;
    assert!(!profile.is_empty(), "CG must shadow at least one instruction");
    profile
}

#[test]
fn jsonl_round_trip_preserves_every_statistic() {
    let profile = captured_profile();
    let text = profile.to_jsonl();
    let back = SensitivityProfile::parse(&text).expect("parse back");
    assert_eq!(profile.len(), back.len());
    for (&id, s) in &profile.insns {
        let b = back.insns.get(&id).unwrap_or_else(|| panic!("insn {id} lost"));
        assert_eq!(s, b, "insn {id} statistics changed across the round trip");
    }
    // And the re-serialization is byte-identical (floats print in
    // shortest-exact form, so this is a fixed point).
    assert_eq!(text, back.to_jsonl());
}

#[test]
fn file_round_trip_preserves_the_profile() {
    let profile = captured_profile();
    let path = std::env::temp_dir().join("craft_shadow_roundtrip_test.jsonl");
    let path = path.to_str().expect("utf-8 temp path");
    profile.to_file(path).expect("write profile");
    let back = SensitivityProfile::from_file(path).expect("read profile back");
    std::fs::remove_file(path).ok();
    assert_eq!(profile.insns, back.insns);
}

#[test]
fn parse_rejects_truncated_and_corrupted_profiles() {
    let profile = captured_profile();
    let text = profile.to_jsonl();

    // Truncation: drop the last record; the header count no longer matches.
    let truncated: Vec<&str> = text.lines().collect();
    let truncated = truncated[..truncated.len() - 1].join("\n");
    assert!(SensitivityProfile::parse(&truncated).is_err());

    // Corruption: damage the header type tag.
    let corrupted = text.replacen("shadow_profile", "shadow_profane", 1);
    assert!(SensitivityProfile::parse(&corrupted).is_err());

    // A file that is not a profile at all.
    assert!(SensitivityProfile::parse("{\"type\":\"event\"}\n").is_err());
}

#[test]
fn aggregation_queries_agree_with_the_raw_map() {
    let profile = captured_profile();
    let ids: Vec<InsnId> = profile.insns.keys().map(|&i| InsnId(i)).collect();
    let max_rel = profile.max_rel_over(ids.iter().copied());
    let expect = profile.insns.values().fold(0.0f64, |m, s| m.max(s.max_rel));
    assert_eq!(max_rel, expect);
    let cancels: u64 = profile.insns.values().map(|s| s.cancels).sum();
    assert_eq!(profile.total_cancellations(), cancels);
}
