//! Property-based tests (proptest) on the core invariants: the in-place
//! replacement representation, snippet numerical semantics, configuration
//! override resolution and format round-trips, and sparse-matrix algebra.

use fpvm::isa::*;
use fpvm::program::Program;
use fpvm::value::{is_replaced, read_as_f64, replace, replace_bits, FLAG_HI64, HI_MASK};
use fpvm::{Vm, VmOptions};
use instrument::{emit_snippet, Emitter, OperandFacts, SnippetPrec};
use mpconfig::{parse_config, print_config, Config, Flag, StructureTree};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// replacement representation
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn replaced_slots_are_always_nan_and_roundtrip(x in proptest::num::f64::ANY) {
        let r = replace(x);
        prop_assert!(is_replaced(r));
        prop_assert!(f64::from_bits(r).is_nan());
        let payload = fpvm::value::extract(r);
        // payload equals the f64→f32 rounding (NaN payloads may differ in
        // bits, but compare as values)
        let want = x as f32;
        if want.is_nan() {
            prop_assert!(payload.is_nan());
        } else {
            prop_assert_eq!(payload.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn ordinary_doubles_never_collide_with_the_flag(x in proptest::num::f64::ANY) {
        // only bit patterns with the exact 0x7FF4DEAD high word are
        // replaced; any genuine double that is not such a NaN is safe
        if x.to_bits() & HI_MASK != FLAG_HI64 {
            prop_assert!(!is_replaced(x.to_bits()));
            prop_assert_eq!(read_as_f64(x.to_bits()).to_bits(), x.to_bits());
        }
    }

    #[test]
    fn replace_bits_preserves_payload(bits in proptest::num::u32::ANY) {
        let r = replace_bits(bits);
        prop_assert!(is_replaced(r));
        prop_assert_eq!(r as u32, bits);
    }
}

// ---------------------------------------------------------------------
// snippet numerical semantics
// ---------------------------------------------------------------------

fn run_snippet_case(a_bits: u64, b_bits: u64, op: FpAluOp, prec: SnippetPrec) -> u64 {
    let mut p = Program::new(1 << 14);
    let m = p.add_module("t");
    let f = p.add_function(m, "main");
    let b0 = p.add_block(f);
    p.funcs[f.0 as usize].entry = b0;
    p.entry = f;
    p.globals = vec![0u8; 24];
    p.globals[..8].copy_from_slice(&a_bits.to_le_bytes());
    p.globals[8..16].copy_from_slice(&b_bits.to_le_bytes());
    p.push_insn(
        b0,
        InstKind::MovF {
            width: Width::W64,
            dst: FpLoc::Reg(Xmm(0)),
            src: FpLoc::Mem(MemRef::abs(0)),
        },
    );
    p.push_insn(
        b0,
        InstKind::MovF {
            width: Width::W64,
            dst: FpLoc::Reg(Xmm(1)),
            src: FpLoc::Mem(MemRef::abs(8)),
        },
    );
    let victim = p.mk_insn(InstKind::FpArith {
        op,
        prec: Prec::Double,
        packed: false,
        dst: Xmm(0),
        src: RM::Reg(Xmm(1)),
    });
    let origin = victim.id;
    let mut e = Emitter { prog: &mut p, func: f, cur: b0, origin };
    emit_snippet(&mut e, &victim, prec, OperandFacts::default());
    let tail = e.cur;
    p.push_insn(
        tail,
        InstKind::MovF {
            width: Width::W64,
            dst: FpLoc::Mem(MemRef::abs(16)),
            src: FpLoc::Reg(Xmm(0)),
        },
    );
    p.block_mut(tail).term = Terminator::Halt;
    let mut vm = Vm::new(&p, VmOptions::default());
    vm.run().result.expect("snippet trapped");
    vm.mem.load_u64(16).unwrap()
}

fn host_alu_f32(op: FpAluOp, a: f32, b: f32) -> f32 {
    match op {
        FpAluOp::Add => a + b,
        FpAluOp::Sub => a - b,
        FpAluOp::Mul => a * b,
        FpAluOp::Div => a / b,
        FpAluOp::Min => {
            if a < b {
                a
            } else {
                b
            }
        }
        FpAluOp::Max => {
            if a > b {
                a
            } else {
                b
            }
        }
    }
}

fn host_alu_f64(op: FpAluOp, a: f64, b: f64) -> f64 {
    match op {
        FpAluOp::Add => a + b,
        FpAluOp::Sub => a - b,
        FpAluOp::Mul => a * b,
        FpAluOp::Div => a / b,
        FpAluOp::Min => {
            if a < b {
                a
            } else {
                b
            }
        }
        FpAluOp::Max => {
            if a > b {
                a
            } else {
                b
            }
        }
    }
}

fn any_op() -> impl Strategy<Value = FpAluOp> {
    prop_oneof![
        Just(FpAluOp::Add),
        Just(FpAluOp::Sub),
        Just(FpAluOp::Mul),
        Just(FpAluOp::Div),
        Just(FpAluOp::Min),
        Just(FpAluOp::Max),
    ]
}

fn finite_f64() -> impl Strategy<Value = f64> {
    // values whose f32 image is finite too, to keep host comparison clean
    (-1e30f64..1e30).prop_filter("nonzero-ish", |x| x.abs() > 1e-30 || *x == 0.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn single_snippets_compute_exact_f32_semantics(
        a in finite_f64(),
        b in finite_f64(),
        a_flagged in any::<bool>(),
        b_flagged in any::<bool>(),
        op in any_op(),
    ) {
        let a_bits = if a_flagged { replace(a) } else { a.to_bits() };
        let b_bits = if b_flagged { replace(b) } else { b.to_bits() };
        let got = run_snippet_case(a_bits, b_bits, op, SnippetPrec::Single);
        prop_assert!(is_replaced(got));
        let want = host_alu_f32(op, a as f32, b as f32);
        let payload = f32::from_bits(got as u32);
        if want.is_nan() {
            prop_assert!(payload.is_nan());
        } else {
            prop_assert_eq!(payload.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn double_snippets_compute_exact_f64_semantics(
        a in finite_f64(),
        b in finite_f64(),
        a_flagged in any::<bool>(),
        b_flagged in any::<bool>(),
        op in any_op(),
    ) {
        let a_bits = if a_flagged { replace(a) } else { a.to_bits() };
        let b_bits = if b_flagged { replace(b) } else { b.to_bits() };
        let got = run_snippet_case(a_bits, b_bits, op, SnippetPrec::Double);
        prop_assert!(!is_replaced(got));
        // flagged inputs were rounded to f32 when they were replaced
        let ae = if a_flagged { (a as f32) as f64 } else { a };
        let be = if b_flagged { (b as f32) as f64 } else { b };
        let want = host_alu_f64(op, ae, be);
        let gotf = f64::from_bits(got);
        if want.is_nan() {
            prop_assert!(gotf.is_nan());
        } else {
            prop_assert_eq!(gotf.to_bits(), want.to_bits());
        }
    }
}

// ---------------------------------------------------------------------
// configuration semantics & format
// ---------------------------------------------------------------------

fn demo_tree() -> (Program, StructureTree) {
    let mut p = Program::new(1 << 12);
    let m = p.add_module("m");
    for fname in ["alpha", "beta"] {
        let f = p.add_function(m, fname);
        let b1 = p.add_block(f);
        let b2 = p.add_block(f);
        p.funcs[f.0 as usize].entry = b1;
        if fname == "alpha" {
            p.entry = f;
        }
        for b in [b1, b2] {
            for _ in 0..3 {
                p.push_insn(
                    b,
                    InstKind::FpArith {
                        op: FpAluOp::Add,
                        prec: Prec::Double,
                        packed: false,
                        dst: Xmm(0),
                        src: RM::Reg(Xmm(1)),
                    },
                );
            }
        }
        p.block_mut(b1).term = Terminator::Jmp(b2);
        p.block_mut(b2).term = Terminator::Ret;
    }
    let t = StructureTree::build(&p);
    (p, t)
}

fn any_flag() -> impl Strategy<Value = Option<Flag>> {
    prop_oneof![
        Just(None),
        Just(Some(Flag::Single)),
        Just(Some(Flag::Double)),
        Just(Some(Flag::Ignore)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn effective_resolution_matches_reference_model(
        mflag in any_flag(),
        fflags in proptest::collection::vec(any_flag(), 2),
        bflags in proptest::collection::vec(any_flag(), 4),
        iflags in proptest::collection::vec(any_flag(), 12),
    ) {
        let (_p, tree) = demo_tree();
        let mut cfg = Config::new();
        if let Some(fl) = mflag {
            cfg.set_module(tree.modules[0].id, fl);
        }
        for (fi, fl) in fflags.iter().enumerate() {
            if let Some(fl) = fl {
                cfg.set_func(tree.modules[0].funcs[fi].id, *fl);
            }
        }
        let mut bi = 0;
        let mut ii = 0;
        for f in &tree.modules[0].funcs {
            for b in &f.blocks {
                if let Some(fl) = bflags[bi] {
                    cfg.set_block(b.id, fl);
                }
                bi += 1;
                for e in &b.insns {
                    if let Some(fl) = iflags[ii] {
                        cfg.set_insn(e.id, fl);
                    }
                    ii += 1;
                }
            }
        }
        // reference model: outermost explicit flag wins, default Double
        let mut bi = 0;
        let mut ii = 0;
        for (fi, f) in tree.modules[0].funcs.iter().enumerate() {
            for b in &f.blocks {
                for e in &b.insns {
                    let want = mflag
                        .or(fflags[fi])
                        .or(bflags[bi])
                        .or(iflags[ii])
                        .unwrap_or(Flag::Double);
                    prop_assert_eq!(cfg.effective(&tree, e.id), want);
                    ii += 1;
                }
                bi += 1;
            }
        }
        // and the exchange format round-trips the explicit flags exactly
        let text = print_config(&tree, &cfg);
        let parsed = parse_config(&tree, &text).unwrap();
        prop_assert_eq!(parsed, cfg);
    }
}

// ---------------------------------------------------------------------
// sparse algebra
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_spmv_matches_dense(
        n in 2usize..12,
        entries in proptest::collection::vec((0usize..12, 0usize..12, -10.0f64..10.0), 1..40),
        xs in proptest::collection::vec(-5.0f64..5.0, 12),
    ) {
        let coo: Vec<(usize, usize, f64)> = entries
            .into_iter()
            .map(|(r, c, v)| (r % n, c % n, v))
            .collect();
        let a = workloads::sparse::Csr::from_coo(n, coo.clone());
        let x = &xs[..n];
        let y = a.spmv(x);
        // dense reference
        let mut want = vec![0.0f64; n];
        let d = a.to_dense();
        for r in 0..n {
            for c in 0..n {
                want[r] += d[r * n + c] * x[c];
            }
        }
        for (g, w) in y.iter().zip(&want) {
            prop_assert!((g - w).abs() <= 1e-9 * (1.0 + w.abs()));
        }
        // nnz after merge never exceeds the raw entry count
        prop_assert!(a.nnz() <= coo.len());
    }

    #[test]
    fn dense_lu_solves_random_diagonally_dominant_systems(
        n in 2usize..10,
        seed in 0u64..1000,
    ) {
        let a = workloads::sparse::memplus_like(n, 2, seed);
        let xs: Vec<f64> = (0..n).map(|k| 1.0 + 0.1 * k as f64).collect();
        let b = a.spmv(&xs);
        let mut d = a.to_dense();
        let mut x = b.clone();
        if workloads::sparse::dense_lu_solve(&mut d, n, &mut x).is_some() {
            let be = workloads::sparse::backward_error(&a, &x, &b);
            prop_assert!(be < 1e-10, "backward error {be}");
        }
    }
}
